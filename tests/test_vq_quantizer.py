"""Vector quantizer tests: round-trips, scoping, residuals, remapping."""

import numpy as np
import pytest

from repro.vq.algorithms import make_quantizer
from repro.vq.config import VQConfig
from repro.vq.quantizer import VectorQuantizer


def _quantizer(vector=4, bits=6, residuals=1, scope="tensor", **kw):
    cfg = VQConfig("t", vector_size=vector, index_bits=bits,
                   residuals=residuals, scope=scope, **kw)
    return VectorQuantizer(cfg, seed=0, kmeans_iters=8)


class TestQuantizeRoundtrip:
    def test_shapes(self, weight):
        qt = _quantizer().quantize(weight)
        assert qt.shape == weight.shape
        assert qt.codes.shape == (weight.shape[0], weight.shape[1] // 4, 1)
        assert qt.dequantize().shape == weight.shape

    def test_reconstruction_error_reasonable(self, weight):
        qt = _quantizer(bits=8).quantize(weight)
        rel = qt.reconstruction_error(weight) / np.var(weight)
        assert rel < 0.5

    def test_more_entries_reduce_error(self, weight):
        small = _quantizer(bits=4).quantize(weight)
        large = _quantizer(bits=8).quantize(weight)
        assert (large.reconstruction_error(weight)
                < small.reconstruction_error(weight))

    def test_residuals_reduce_error(self, weight):
        one = _quantizer(bits=6, residuals=1).quantize(weight)
        two = _quantizer(bits=6, residuals=2).quantize(weight)
        assert (two.reconstruction_error(weight)
                < one.reconstruction_error(weight))

    def test_codes_in_range(self, weight):
        qt = _quantizer(bits=6).quantize(weight)
        assert qt.codes.min() >= 0
        assert qt.codes.max() < 64

    def test_rejects_indivisible_columns(self):
        with pytest.raises(ValueError):
            _quantizer(vector=4).quantize(np.zeros((8, 10)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            _quantizer().quantize(np.zeros(16))

    def test_quantized_bytes_accounting(self, weight):
        qt = _quantizer(bits=8).quantize(weight)
        n = weight.size
        assert qt.quantized_bytes == pytest.approx(n / 4 * 1.0)
        assert qt.total_bytes > qt.quantized_bytes


class TestScoping:
    def test_tensor_scope_single_group(self, weight):
        qt = _quantizer(scope="tensor").quantize(weight)
        assert qt.n_groups == 1

    def test_channel_group_scope(self, weight):
        qt = _quantizer(scope="channel_group", bits=5).quantize(weight)
        assert qt.n_groups == weight.shape[1] // 4
        # Each column of codes belongs to its own group.
        assert np.array_equal(qt.group_map[0], np.arange(qt.n_groups))

    def test_tile_scope_group_count(self, weight):
        q = _quantizer(scope="tile", tile_shape=(64, 64))
        qt = q.quantize(weight)
        rows, cols = weight.shape
        assert qt.n_groups == (rows // 64) * (cols // 64)

    def test_tile_scope_group_layout(self):
        q = _quantizer(scope="tile", tile_shape=(64, 64))
        gm = q.group_map(128, 32)  # 128 rows, 32 subvectors (128 cols)
        assert gm[0, 0] == 0
        assert gm[0, 16] == 1      # second column tile
        assert gm[64, 0] == 2      # second row tile
        assert gm[127, 31] == 3

    def test_tile_width_must_divide_vector(self):
        q = _quantizer(scope="tile", tile_shape=(64, 30))
        with pytest.raises(ValueError):
            q.group_map(64, 16)


class TestLattice:
    def test_lattice_requires_matching_bits(self):
        cfg = VQConfig("l", vector_size=8, index_bits=12, residuals=1,
                       lattice=True)
        with pytest.raises(ValueError):
            VectorQuantizer(cfg)

    def test_lattice_roundtrip(self, weight):
        q = make_quantizer("quip#-4", kmeans_iters=4, train_sample=4096)
        qt = q.quantize(weight)
        rel = qt.reconstruction_error(weight) / np.var(weight)
        assert rel < 0.5

    def test_lattice_lookup_indices_are_base_table(self, qt_quip):
        lookup = qt_quip.lookup_indices()
        assert lookup.max() < 256
        # Raw codes carry the sign mask in the high bits.
        assert qt_quip.codes.max() >= 256

    def test_lattice_signs_recovered(self, weight, qt_quip):
        # Dequantized signs must match the original signs wherever the
        # magnitude is non-negligible.
        deq = qt_quip.dequantize()
        mask = np.abs(weight) > np.abs(weight).mean()
        agreement = np.mean(np.sign(deq[mask]) == np.sign(weight[mask]))
        assert agreement > 0.95


class TestRemap:
    def test_remap_preserves_dequantization(self, qt_gptvq):
        perm = np.random.default_rng(0).permutation(256)
        remapped = qt_gptvq.remap(perm)
        assert np.allclose(remapped.dequantize(), qt_gptvq.dequantize())

    def test_remap_lattice_preserves_dequantization(self, qt_quip):
        perm = np.random.default_rng(1).permutation(256)
        remapped = qt_quip.remap(perm)
        assert np.allclose(remapped.dequantize(), qt_quip.dequantize())

    def test_remap_rejects_non_permutation(self, qt_gptvq):
        with pytest.raises(ValueError):
            qt_gptvq.remap(np.zeros(256, dtype=int))

    def test_remap_moves_codes(self, qt_gptvq):
        perm = np.roll(np.arange(256), 1)
        remapped = qt_gptvq.remap(perm)
        assert not np.array_equal(remapped.codes, qt_gptvq.codes)


class TestKVQuantization:
    def test_cq_groups_per_channel(self, qt_cq2_kv, kv_data):
        assert qt_cq2_kv.n_groups == kv_data.shape[1] // 4

    def test_cq_reconstruction(self, qt_cq2_kv, kv_data):
        rel = qt_cq2_kv.reconstruction_error(kv_data) / np.var(kv_data)
        assert rel < 0.6

    def test_cq4_smaller_vectors_better_reconstruction(
            self, qt_cq2_kv, qt_cq4_kv, kv_data):
        # CQ-4 spends 4 bits/element vs CQ-2's 2: lower error.
        assert (qt_cq4_kv.reconstruction_error(kv_data)
                < qt_cq2_kv.reconstruction_error(kv_data))
