"""Hierarchical-fusion tests: shuffle counts, Alg. 1 mapping, exchange."""

import numpy as np
import pytest

from repro.core.fusion import (
    REQUIRED_LAYOUT,
    SHUFFLE_THRESHOLD,
    decide_fusion,
    exchange_to_compute_layout,
    n_shuffles,
    thread_mapping,
)
from repro.vq.algorithms import make_config


class TestShuffleCounts:
    """Tbl. V's #Shuffle row."""

    @pytest.mark.parametrize("algo,op,expected", [
        ("quip#-4", "gemm", 3),
        ("aqlm-3", "gemm", 3),
        ("gptvq-2", "gemm", 1),
        ("quip#-4", "gemv", 7),
        ("aqlm-3", "gemv", 7),
        ("gptvq-2", "gemv", 3),
        ("cq-2", "attention_v", 3),
        ("cq-4", "attention_v", 1),
    ])
    def test_paper_shuffle_counts(self, algo, op, expected):
        cfg = make_config(algo)
        assert n_shuffles(cfg.vector_size, REQUIRED_LAYOUT[op]) == expected

    def test_no_shuffles_when_layouts_match(self):
        assert n_shuffles(2, 2) == 0
        assert n_shuffles(2, 4) == 0

    def test_rejects_non_power_of_two_ratio(self):
        with pytest.raises(ValueError):
            n_shuffles(12, 2)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            n_shuffles(8, 3)


class TestDecideFusion:
    def test_register_fusion_below_threshold(self):
        d = decide_fusion(8, "gemm", enable_register=True)
        assert d.uses_register_fusion
        assert d.n_shuffles == 3

    def test_shared_fusion_above_threshold(self):
        # QuiP#/AQLM GeMV: 7 shuffles > 5 -> stay in shared memory.
        d = decide_fusion(8, "gemv", enable_register=True)
        assert d.level == "shared"
        assert d.n_shuffles == 7

    def test_disabled_register_fusion(self):
        d = decide_fusion(4, "gemm", enable_register=False)
        assert d.level == "shared"

    def test_threshold_is_five(self):
        assert SHUFFLE_THRESHOLD == 5

    def test_custom_threshold(self):
        d = decide_fusion(8, "gemv", threshold=7)
        assert d.uses_register_fusion


class TestThreadMapping:
    def test_fig12_mini_warps(self):
        # Fig. 12: vector 8, mma layout 2 -> mini-warps of 4 threads,
        # 3 shuffles.
        mapping = thread_mapping(8, 2)
        assert mapping.mini_warp_size == 4
        assert mapping.n_shuffles == 3

    def test_mapping_is_permutation(self):
        for v, req in ((8, 2), (8, 1), (4, 2), (4, 1), (2, 1)):
            mapping = thread_mapping(v, req)
            assert sorted(mapping.dequant_thread.tolist()) == list(range(32))

    def test_matched_layout_identity(self):
        mapping = thread_mapping(2, 2)
        assert mapping.mini_warp_size == 1
        assert mapping.n_shuffles == 0

    def test_mini_warps_partition_the_warp(self):
        mapping = thread_mapping(8, 2)
        members = sorted(w for mw in mapping.mini_warps for w in mw)
        assert members == list(range(32))


class TestExchange:
    @pytest.mark.parametrize("vector,req", [(8, 2), (4, 2), (4, 1), (8, 4)])
    def test_exchange_transposes_mini_warps(self, vector, req):
        """After the xor butterfly, lane l holds the chunks compute
        thread l consumes: the mini-warp's (lane, slot) transpose."""
        rng = np.random.default_rng(vector * 10 + req)
        warp = rng.standard_normal((32, vector))
        out = exchange_to_compute_layout(warp, req)
        ratio = vector // req
        chunks_in = warp.reshape(32, ratio, req)
        chunks_out = out.reshape(32, ratio, req)
        for base in range(0, 32, ratio):
            for l in range(ratio):
                for s in range(ratio):
                    assert np.allclose(chunks_out[base + l, s],
                                       chunks_in[base + s, l])

    def test_exchange_identity_when_matched(self):
        warp = np.arange(64, dtype=float).reshape(32, 2)
        out = exchange_to_compute_layout(warp, 2)
        assert np.array_equal(out, warp)

    def test_exchange_preserves_values(self):
        rng = np.random.default_rng(9)
        warp = rng.standard_normal((32, 8))
        out = exchange_to_compute_layout(warp, 2)
        assert np.allclose(np.sort(warp.ravel()), np.sort(out.ravel()))

    def test_exchange_uses_expected_shuffle_count(self):
        # The loop runs ratio-1 offsets, matching n_shuffles.
        assert n_shuffles(8, 2) == 8 // 2 - 1
