"""Continuous-batching scheduler and KV-memory accounting tests."""

import pytest

from repro.llm.config import llama_7b, tiny_llama
from repro.serve.requests import Request
from repro.serve.scheduler import (
    ContinuousBatchScheduler,
    KVBudget,
    kv_bytes_per_token,
    kv_codebook_bytes,
)
from repro.vq.algorithms import make_config


def _req(i, prompt=64, output=16, arrival=0.0):
    return Request(req_id=i, arrival_s=arrival, prompt_tokens=prompt,
                   output_tokens=output)


def _scheduler(max_tokens=10_000, token_budget=256, max_seqs=8):
    budget = KVBudget(capacity_bytes=float(max_tokens),
                      bytes_per_token=1.0)
    return ContinuousBatchScheduler(budget, token_budget=token_budget,
                                    max_seqs=max_seqs)


class TestKVAccounting:
    def test_fp16_bytes_per_token(self):
        cfg = llama_7b()
        # 2 (K,V) * 32 heads * 128 dim * 2 B * 32 layers = 512 KiB/token.
        assert kv_bytes_per_token(cfg) == 524_288

    def test_vq_compression_scales_bytes(self):
        cfg = llama_7b()
        cq2 = make_config("cq-2")  # 12.5% of FP16
        assert kv_bytes_per_token(cfg, vq=cq2) == pytest.approx(65_536)
        assert kv_bytes_per_token(cfg, bits=4) == pytest.approx(131_072)

    def test_vq_and_bits_are_exclusive(self):
        with pytest.raises(ValueError):
            kv_bytes_per_token(llama_7b(), vq=make_config("cq-2"), bits=4)

    def test_codebook_overhead_positive_but_small(self):
        cfg = llama_7b()
        cq2 = make_config("cq-2")
        overhead = kv_codebook_bytes(cfg, cq2)
        assert overhead > 0
        # Per-channel-group codebooks cost ~2k tokens' worth of cache —
        # real but amortised against the tens of thousands of tokens a
        # serving budget holds.
        assert overhead < 5000 * kv_bytes_per_token(cfg, vq=cq2)

    def test_budget_max_tokens(self):
        cfg = llama_7b()
        budget = KVBudget.for_model(cfg, 4e9, vq=make_config("cq-2"))
        fp16 = KVBudget.for_model(cfg, 4e9)
        assert budget.max_tokens > 7 * fp16.max_tokens

    def test_budget_rejects_overhead_exceeding_capacity(self):
        with pytest.raises(ValueError):
            KVBudget(capacity_bytes=10.0, bytes_per_token=1.0,
                     overhead_bytes=10.0)

    def test_budget_derives_from_gpu_spec(self):
        from repro.gpu.spec import RTX4090
        cfg = llama_7b()
        budget = KVBudget.for_gpu(cfg, RTX4090)
        # 90% of 24 GB minus ~13.5 GB of FP16 weights leaves ~8 GB.
        expected = RTX4090.dram_bytes * 0.9 - 2.0 * cfg.param_count
        assert budget.capacity_bytes == pytest.approx(expected)
        assert budget.max_tokens > 10_000
        # Compression multiplies the token count at the same capacity.
        cq4 = KVBudget.for_gpu(cfg, RTX4090, vq=make_config("cq-4"))
        assert cq4.max_tokens > 3.5 * budget.max_tokens

    def test_budget_for_gpu_validation(self):
        from repro.gpu.spec import RTX4090
        cfg = llama_7b()
        with pytest.raises(ValueError):  # no dram_bytes on the spec
            KVBudget.for_gpu(cfg, RTX4090.with_dram(0.0))
        with pytest.raises(ValueError):  # weights exceed the chip
            KVBudget.for_gpu(cfg, RTX4090.with_dram(10.0))
        with pytest.raises(ValueError):
            KVBudget.for_gpu(cfg, RTX4090, reserve_fraction=1.0)
        # Quantized weights free memory for the cache.
        int4 = KVBudget.for_gpu(cfg, RTX4090,
                                weight_bytes=0.5 * cfg.param_count)
        assert int4.capacity_bytes > KVBudget.for_gpu(
            cfg, RTX4090).capacity_bytes


class TestScheduling:
    def test_prefill_then_decode_lifecycle(self):
        sched = _scheduler(token_budget=256)
        sched.submit(_req(0, prompt=100, output=3))
        plan = sched.schedule()
        assert plan.decode == [] and plan.prefill_tokens == 100
        finished = sched.complete(plan, now_s=1.0)
        assert finished == []
        seq = sched.running[0]
        # Prefill completion emits the first token in the same iteration.
        assert seq.generated == 1 and seq.first_token_s == 1.0
        plan = sched.schedule()
        assert plan.prefill == [] and plan.decode_batch == 1
        sched.complete(plan, now_s=2.0)
        plan = sched.schedule()
        finished = sched.complete(plan, now_s=3.0)
        assert len(finished) == 1 and finished[0].finished_s == 3.0
        assert sched.running == [] and sched.reserved_tokens == 0

    def test_chunked_prefill_respects_token_budget(self):
        sched = _scheduler(token_budget=64)
        sched.submit(_req(0, prompt=200, output=4))
        chunks = []
        for _ in range(4):
            plan = sched.schedule()
            if plan.prefill:
                chunks.append(plan.prefill_tokens)
            sched.complete(plan, now_s=0.0)
        assert chunks[:3] == [64, 64, 64]
        assert sched.running[0].prefill_remaining == 200 - sum(chunks)

    def test_decode_has_priority_over_prefill(self):
        sched = _scheduler(token_budget=64)
        sched.submit(_req(0, prompt=32, output=8))
        sched.complete(sched.schedule(), now_s=0.0)  # seq 0 into decode
        sched.submit(_req(1, prompt=500, output=8))
        plan = sched.schedule()
        assert plan.decode_batch == 1
        assert plan.prefill_tokens == 63  # budget minus the decode token

    def test_admission_blocks_on_kv_memory(self):
        sched = _scheduler(max_tokens=150, token_budget=1024, max_seqs=8)
        sched.submit(_req(0, prompt=64, output=36))  # reserves 100
        sched.submit(_req(1, prompt=64, output=36))  # would need 200
        plan = sched.schedule()
        assert len(sched.running) == 1
        assert sched.reserved_tokens == 100
        # Finishing the first request frees its reservation.
        for _ in range(50):
            plan = sched.schedule()
            if not sched.complete(plan, now_s=0.0):
                continue
            break
        sched.schedule()
        assert [s.request.req_id for s in sched.running] == [1]

    def test_admission_is_fcfs_without_holes(self):
        sched = _scheduler(max_tokens=150, token_budget=1024, max_seqs=8)
        sched.submit(_req(0, prompt=64, output=36))
        sched.submit(_req(1, prompt=100, output=40))  # does not fit
        sched.submit(_req(2, prompt=8, output=8))     # would fit, must wait
        sched.schedule()
        assert [s.request.req_id for s in sched.running] == [0]

    def test_max_seqs_cap(self):
        sched = _scheduler(max_tokens=100_000, token_budget=4096, max_seqs=3)
        for i in range(5):
            sched.submit(_req(i))
        sched.schedule()
        assert len(sched.running) == 3 and len(sched.waiting) == 2

    def test_rejects_request_larger_than_budget(self):
        sched = _scheduler(max_tokens=50)
        with pytest.raises(ValueError):
            sched.submit(_req(0, prompt=64, output=16))

    def test_tracks_peaks_and_utilization(self):
        sched = _scheduler(max_tokens=1000, token_budget=4096, max_seqs=8)
        sched.submit(_req(0, prompt=64, output=16))
        sched.schedule()
        assert sched.peak_seqs == 1
        assert sched.peak_reserved_tokens == 80
        assert sched.kv_utilization == pytest.approx(0.08)

    def test_decode_round_robin_prevents_starvation(self):
        """Regression: with ``token_budget < len(running)`` decoding
        sequences, decode slots rotate round-robin so every sequence
        makes progress — pre-fix, slots went in ``running`` order every
        iteration and the tail starved until the head drained."""
        sched = _scheduler(max_tokens=100_000, token_budget=64, max_seqs=8)
        for i in range(6):
            sched.submit(_req(i, prompt=8, output=50))
        sched.complete(sched.schedule(), now_s=0.0)  # prefill all 6
        assert all(s.in_decode for s in sched.running)
        assert all(s.generated == 1 for s in sched.running)
        sched.token_budget = 2  # now 2 decode slots for 6 sequences
        for it in range(1, 10):
            plan = sched.schedule()
            assert plan.decode_batch == 2
            sched.complete(plan, now_s=float(it))
        # 9 iterations x 2 slots = 18 tokens over 6 sequences: exactly
        # 3 each under round-robin (plus the prefill-completion token).
        gens = [s.generated for s in sched.running]
        assert gens == [4] * 6

    def test_decode_rotation_is_noop_with_ample_budget(self):
        """With slots for everyone, rotation changes nothing: all
        decoding sequences are served every iteration."""
        sched = _scheduler(max_tokens=100_000, token_budget=512, max_seqs=8)
        for i in range(4):
            sched.submit(_req(i, prompt=8, output=5))
        sched.complete(sched.schedule(), now_s=0.0)
        for it in range(1, 4):
            plan = sched.schedule()
            assert plan.decode_batch == 4
            sched.complete(plan, now_s=float(it))
        assert all(s.generated == 4 for s in sched.running)

    def test_integration_with_model_budget(self):
        """End-to-end: VQ budgets admit many more tiny-Llama sequences."""
        cfg = tiny_llama()
        capacity = 400 * kv_bytes_per_token(cfg)  # 400 FP16 tokens
        results = {}
        for name, vq in (("fp16", None), ("cq-2", make_config("cq-2"))):
            budget = KVBudget.for_model(cfg, capacity, vq=vq)
            sched = ContinuousBatchScheduler(budget, token_budget=8192,
                                             max_seqs=512)
            for i in range(64):
                sched.submit(_req(i, prompt=64, output=36))
            sched.schedule()
            results[name] = len(sched.running)
        assert results["fp16"] == 4
        # At tiny-Llama scale the resident codebooks eat a visible slice
        # of the budget, so the gain is below the 8x code compression —
        # but still well above 2x (at 7B scale the overhead amortises).
        assert results["cq-2"] >= 2 * results["fp16"]
