"""Codebook-cache tests (Sec. V semantics)."""

import numpy as np
import pytest

from repro.core.cache import CacheBoundaries, CodebookCache, plan_boundaries
from repro.core.slack import ResourceSlack


class TestBoundaries:
    def test_level_of(self):
        b = CacheBoundaries(n_reg=4, n_shared=64)
        assert b.level_of(0) == "register"
        assert b.level_of(3) == "register"
        assert b.level_of(4) == "shared"
        assert b.level_of(63) == "shared"
        assert b.level_of(64) == "global"

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheBoundaries(n_reg=-1, n_shared=4)
        with pytest.raises(ValueError):
            CacheBoundaries(n_reg=8, n_shared=4)


class TestPlanBoundaries:
    def test_warp_distributed_register_budget(self):
        # 8 regs/thread slack * 4 B * 32 lanes = 1024 B -> 128 entries
        # of 8 B, capped by hot_entries.
        slack = ResourceSlack(regs_per_thread=8, smem_bytes=0,
                              baseline_blocks_per_sm=2)
        b = plan_boundaries(slack, entry_bytes=8, n_entries=256,
                            hot_entries=20)
        assert b.n_reg == 20

    def test_shared_budget_divided_by_books(self):
        slack = ResourceSlack(0, 16384, 2)
        one = plan_boundaries(slack, 8, 4096, resident_books=1)
        many = plan_boundaries(slack, 8, 4096, resident_books=16)
        assert one.n_shared == 2048
        assert many.n_shared == 128

    def test_capped_at_entry_count(self):
        slack = ResourceSlack(64, 1 << 20, 2)
        b = plan_boundaries(slack, 8, 256)
        assert b.n_shared == 256

    def test_zero_hot_entries_disables_register_level(self):
        slack = ResourceSlack(64, 1024, 2)
        b = plan_boundaries(slack, 8, 256, hot_entries=0)
        assert b.n_reg == 0

    def test_validation(self):
        slack = ResourceSlack(0, 0, 1)
        with pytest.raises(ValueError):
            plan_boundaries(slack, 0, 256)
        with pytest.raises(ValueError):
            plan_boundaries(slack, 8, 256, resident_books=0)


class TestCodebookCache:
    @pytest.fixture()
    def cache(self, qt_gptvq):
        return CodebookCache(qt_gptvq)

    def test_reorder_preserves_dequantization(self, cache, qt_gptvq):
        assert np.allclose(cache.dequantize(), qt_gptvq.dequantize())

    def test_reordered_index_zero_is_hottest(self, cache):
        counts = np.bincount(cache.tensor.lookup_indices().ravel(),
                             minlength=256)
        assert counts[0] == counts.max()

    def test_access_requires_load(self, cache):
        with pytest.raises(RuntimeError):
            cache.access(0)

    def test_load_default_boundaries(self, cache):
        slack = ResourceSlack(regs_per_thread=4, smem_bytes=1024,
                              baseline_blocks_per_sm=2)
        bounds = cache.load(slack)
        assert bounds is cache.boundaries
        assert bounds.n_shared >= bounds.n_reg

    def test_user_override(self, cache):
        override = CacheBoundaries(2, 100)
        assert cache.load(ResourceSlack(0, 0, 1), override) == override

    def test_access_records_levels(self, cache):
        cache.load(ResourceSlack(0, 0, 1), CacheBoundaries(1, 16))
        cache.access(0)
        cache.access(5)
        cache.access(200)
        assert cache.level_hits == {"register": 1, "shared": 1,
                                    "global": 1}

    def test_access_returns_entry_vector(self, cache, qt_gptvq):
        cache.load(ResourceSlack(0, 0, 1), CacheBoundaries(0, 256))
        entry = cache.access(3)
        book = cache.tensor.codebooks.get(0, 0)
        assert np.allclose(entry, book.entries[3])

    def test_switch_changes_group(self, qt_cq2_kv):
        # CQ trains one codebook per channel group: Switch is needed.
        kv_cache = CodebookCache(qt_cq2_kv)
        kv_cache.load(ResourceSlack(0, 0, 1), CacheBoundaries(0, 256))
        kv_cache.switch(1)
        entry = kv_cache.access(0)
        book = kv_cache.tensor.codebooks.get(1, 0)
        assert np.allclose(entry, book.entries[0])

    def test_switch_validates_range(self, cache):
        with pytest.raises(IndexError):
            cache.switch(10_000)
        with pytest.raises(IndexError):
            cache.switch(0, residual=5)

    def test_coverage_sums_to_one(self, cache):
        cache.load(ResourceSlack(0, 0, 1), CacheBoundaries(4, 64))
        cov = cache.coverage()
        assert (cov["register"] + cov["shared"] + cov["global"]
                == pytest.approx(1.0))
        assert cov["register"] > 0  # hottest entries see traffic

    def test_staged_bytes(self, cache):
        cache.load(ResourceSlack(0, 0, 1), CacheBoundaries(4, 64))
        staged = cache.staged_bytes()
        assert staged["register_per_thread"] == 4 * 8
        assert staged["shared_per_book"] == 60 * 8
