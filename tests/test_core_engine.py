"""Compute-engine and level-sweep tests."""

import pytest

from repro.core.engine import ComputeEngine, LevelSweep
from repro.gpu.spec import RTX4090
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import FP16GemvKernel, GemmShape


class TestLevelSweep:
    SWEEP = LevelSweep("x", {"GC": 100.0, "SC": 80.0, "O1": 60.0,
                             "O2": 55.0, "O3": 40.0, "O4": 42.0})

    def test_best_level(self):
        assert self.SWEEP.best_level == "O3"
        assert self.SWEEP.best_us == 40.0

    def test_reduction_vs_gc(self):
        assert self.SWEEP.reduction_vs("GC") == pytest.approx(0.6)

    def test_reduction_of_level(self):
        assert self.SWEEP.reduction_of("SC") == pytest.approx(0.2)

    def test_reduction_vs_other_baseline(self):
        assert self.SWEEP.reduction_vs("SC") == pytest.approx(0.5)

    def test_single_level_sweep(self):
        sweep = LevelSweep("solo", {"O4": 37.5})
        assert sweep.best_level == "O4"
        assert sweep.best_us == 37.5
        assert sweep.reduction_vs("O4") == pytest.approx(0.0)
        assert sweep.reduction_of("O4", baseline="O4") == pytest.approx(0.0)

    def test_reduction_of_unknown_level_raises_keyerror(self):
        with pytest.raises(KeyError):
            self.SWEEP.reduction_of("O9")
        with pytest.raises(KeyError):
            self.SWEEP.reduction_of("O4", baseline="nope")


class TestComputeEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return ComputeEngine(RTX4090)

    def test_latency_of_plain_kernel(self, engine):
        k = FP16GemvKernel(GemmShape(1, 2048, 2048))
        assert engine.latency_us(k) > 0

    def test_latency_of_generated_kernel(self, engine, qt_gptvq):
        gk = engine.generator.generate_gemv(
            GemmShape(1, 2048, 2048), qt_gptvq, level="O4")
        assert engine.latency_us(gk) == pytest.approx(gk.latency_us())

    def test_latency_rejects_unknown_type(self, engine):
        with pytest.raises(TypeError):
            engine.latency_us("not a kernel")

    def test_sweep_covers_all_levels(self, engine, qt_gptvq):
        sweep = engine.sweep(engine.generator.generate_gemv,
                             GemmShape(1, 2048, 2048), qt_gptvq,
                             name="gemv")
        assert set(sweep.latencies_us) == {"GC", "SC", "O1", "O2",
                                           "O3", "O4"}
        assert sweep.reduction_vs("GC") >= 0.0

    def test_compare(self, engine):
        kernels = {
            "small": FP16GemvKernel(GemmShape(1, 1024, 1024)),
            "large": FP16GemvKernel(GemmShape(1, 8192, 8192)),
        }
        out = engine.compare(kernels)
        assert out["large"] > out["small"]


class TestBatchLatencyMemo:
    """The memoized batch-latency API the serving simulator relies on."""

    @pytest.fixture()
    def engine(self):
        return ComputeEngine(RTX4090)

    def test_cache_hit_returns_identical_value(self, engine):
        shape = GemmShape(1, 2048, 2048)
        first = engine.batch_latency_us("gemv", shape)
        info = engine.memo_info()
        again = engine.batch_latency_us("gemv", shape)
        assert again == first  # bit-identical, not approx: same cache entry
        assert engine.memo_info()["hits"] == info["hits"] + 1
        assert engine.memo_info()["misses"] == info["misses"]

    def test_distinct_shapes_do_not_collide(self, engine):
        a = engine.batch_latency_us("gemv", GemmShape(1, 2048, 2048))
        b = engine.batch_latency_us("gemv", GemmShape(1, 4096, 4096))
        assert a != b
        assert engine.memo_info()["currsize"] == 2

    def test_distinct_levels_do_not_collide(self, engine, qt_gptvq):
        shape = GemmShape(1, 2048, 2048)
        gc = engine.batch_latency_us("gemv", shape, qt=qt_gptvq, level="GC")
        o4 = engine.batch_latency_us("gemv", shape, qt=qt_gptvq, level="O4")
        assert o4 < gc

    def test_matches_unmemoized_kernels(self, engine, qt_gptvq):
        shape = GemmShape(1, 2048, 2048)
        direct = engine.generator.generate_gemv(
            shape, qt_gptvq, level="O4").latency_us()
        assert engine.batch_latency_us(
            "gemv", shape, qt=qt_gptvq) == pytest.approx(direct)
        fp16 = FP16GemvKernel(shape).latency_us(RTX4090)
        assert engine.batch_latency_us("gemv", shape) == pytest.approx(fp16)

    def test_attention_defaults_value_cache_to_key_cache(self, engine,
                                                         qt_cq4_kv):
        shape = AttentionShape(batch=1, heads=2, seq_len=512, head_dim=128)
        us = engine.batch_latency_us("attention", shape, qt=qt_cq4_kv)
        assert us == pytest.approx(engine.batch_latency_us(
            "attention", shape, qt=qt_cq4_kv, qt_v=qt_cq4_kv))

    def test_prefill_attention_is_fp16_only(self, engine, qt_cq4_kv):
        shape = AttentionShape(batch=1, heads=2, seq_len=512, head_dim=128)
        assert engine.batch_latency_us("prefill_attention", shape) > 0
        with pytest.raises(ValueError):
            engine.batch_latency_us("prefill_attention", shape, qt=qt_cq4_kv)

    def test_rejects_bad_arguments(self, engine, qt_gptvq):
        with pytest.raises(ValueError):
            engine.batch_latency_us("conv", GemmShape(1, 64, 64))
        with pytest.raises(ValueError):
            engine.batch_latency_us("gemv", GemmShape(1, 64, 64),
                                    qt=qt_gptvq, bits=4)
        with pytest.raises(TypeError):
            engine.batch_latency_us("gemv", AttentionShape(1, 2, 64, 128))

    def test_memo_clear_resets_statistics(self, engine):
        shape = GemmShape(1, 1024, 1024)
        engine.batch_latency_us("gemv", shape)
        engine.batch_latency_us("gemv", shape)
        engine.memo_clear()
        info = engine.memo_info()
        assert info == {"hits": 0, "misses": 0, "currsize": 0,
                        "maxsize": info["maxsize"]}

    def test_lru_evicts_oldest(self):
        engine = ComputeEngine(RTX4090, memo_size=2)
        shapes = [GemmShape(1, 1024, 1024), GemmShape(1, 2048, 2048),
                  GemmShape(1, 4096, 4096)]
        for s in shapes:
            engine.batch_latency_us("gemv", s)
        assert engine.memo_info()["currsize"] == 2
        # The first shape was evicted: timing it again is a miss.
        misses = engine.memo_info()["misses"]
        engine.batch_latency_us("gemv", shapes[0])
        assert engine.memo_info()["misses"] == misses + 1
