"""Compute-engine and level-sweep tests."""

import pytest

from repro.core.engine import ComputeEngine, LevelSweep
from repro.gpu.spec import RTX4090
from repro.kernels.gemm import FP16GemvKernel, GemmShape


class TestLevelSweep:
    SWEEP = LevelSweep("x", {"GC": 100.0, "SC": 80.0, "O1": 60.0,
                             "O2": 55.0, "O3": 40.0, "O4": 42.0})

    def test_best_level(self):
        assert self.SWEEP.best_level == "O3"
        assert self.SWEEP.best_us == 40.0

    def test_reduction_vs_gc(self):
        assert self.SWEEP.reduction_vs("GC") == pytest.approx(0.6)

    def test_reduction_of_level(self):
        assert self.SWEEP.reduction_of("SC") == pytest.approx(0.2)

    def test_reduction_vs_other_baseline(self):
        assert self.SWEEP.reduction_vs("SC") == pytest.approx(0.5)


class TestComputeEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return ComputeEngine(RTX4090)

    def test_latency_of_plain_kernel(self, engine):
        k = FP16GemvKernel(GemmShape(1, 2048, 2048))
        assert engine.latency_us(k) > 0

    def test_latency_of_generated_kernel(self, engine, qt_gptvq):
        gk = engine.generator.generate_gemv(
            GemmShape(1, 2048, 2048), qt_gptvq, level="O4")
        assert engine.latency_us(gk) == pytest.approx(gk.latency_us())

    def test_latency_rejects_unknown_type(self, engine):
        with pytest.raises(TypeError):
            engine.latency_us("not a kernel")

    def test_sweep_covers_all_levels(self, engine, qt_gptvq):
        sweep = engine.sweep(engine.generator.generate_gemv,
                             GemmShape(1, 2048, 2048), qt_gptvq,
                             name="gemv")
        assert set(sweep.latencies_us) == {"GC", "SC", "O1", "O2",
                                           "O3", "O4"}
        assert sweep.reduction_vs("GC") >= 0.0

    def test_compare(self, engine):
        kernels = {
            "small": FP16GemvKernel(GemmShape(1, 1024, 1024)),
            "large": FP16GemvKernel(GemmShape(1, 8192, 8192)),
        }
        out = engine.compare(kernels)
        assert out["large"] > out["small"]
