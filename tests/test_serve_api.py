"""Config facade tests: legacy-kwarg equivalence, deprecation, Report.

The ``repro.serve.api`` configs are the public construction surface;
the old per-constructor kwarg sprawl must keep working for one PR
cycle, warn, and produce *identical* simulations.
"""

import pytest

from repro.cluster.fleet import FleetReport, FleetSimulator, Replica
from repro.serve.api import FleetConfig, Report, SchedulerConfig, SimConfig
from repro.serve.requests import Request
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget
from repro.serve.simulator import ServingReport, ServingSimulator


class ConstantCostModel:
    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _budget():
    return KVBudget(capacity_bytes=1e5, bytes_per_token=1.0)


def _trace(n=12, gap=0.002):
    return [Request(req_id=i, arrival_s=i * gap, prompt_tokens=24,
                    output_tokens=6) for i in range(n)]


class TestSchedulerConfig:
    def test_legacy_kwargs_warn_and_match_config(self):
        with pytest.warns(DeprecationWarning, match="SchedulerConfig"):
            legacy = ContinuousBatchScheduler(_budget(), token_budget=128,
                                              max_seqs=4)
        config = ContinuousBatchScheduler(
            _budget(), config=SchedulerConfig(token_budget=128, max_seqs=4))
        assert legacy.config == config.config
        # Identical runs, metric for metric.
        reports = []
        for sched in (legacy, config):
            sim = ServingSimulator(sched, ConstantCostModel(),
                                   config=SimConfig(name="eq"))
            reports.append(sim.run(_trace()).metrics())
        assert reports[0] == reports[1]

    def test_defaults_without_warning(self, recwarn):
        sched = ContinuousBatchScheduler(_budget())
        assert sched.config == SchedulerConfig()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_config_plus_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            ContinuousBatchScheduler(_budget(), token_budget=128,
                                     config=SchedulerConfig())

    def test_build(self):
        sched = SchedulerConfig(max_seqs=3).build(_budget())
        assert isinstance(sched, ContinuousBatchScheduler)
        assert sched.max_seqs == 3

    def test_frozen(self):
        with pytest.raises(Exception):
            SchedulerConfig().token_budget = 1


class TestSimConfig:
    def test_legacy_name_warns_and_matches(self):
        sched_cfg = SchedulerConfig(token_budget=128)
        with pytest.warns(DeprecationWarning, match="SimConfig"):
            legacy = ServingSimulator(sched_cfg.build(_budget()),
                                      ConstantCostModel(), name="x")
        config = ServingSimulator(sched_cfg.build(_budget()),
                                  ConstantCostModel(),
                                  config=SimConfig(name="x"))
        assert legacy.name == config.name == "x"
        assert (legacy.run(_trace()).metrics()
                == config.run(_trace()).metrics())

    def test_config_plus_legacy_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            ServingSimulator(SchedulerConfig().build(_budget()),
                             ConstantCostModel(), name="x",
                             config=SimConfig())

    def test_build_wires_scheduler_and_cap(self):
        cfg = SimConfig(scheduler=SchedulerConfig(max_seqs=2),
                        name="built", max_iterations=7)
        sim = cfg.build(_budget(), ConstantCostModel())
        assert sim.name == "built"
        assert sim.scheduler.max_seqs == 2
        with pytest.raises(RuntimeError, match="7 iterations"):
            sim.run(_trace(64))


class TestFleetConfig:
    def test_legacy_kwargs_warn_and_match(self):
        cost = ConstantCostModel()
        sched_cfg = SchedulerConfig(token_budget=256, max_seqs=8)

        def replicas():
            return [Replica(i, sched_cfg.build(_budget()), cost)
                    for i in range(2)]

        with pytest.warns(DeprecationWarning, match="FleetConfig"):
            legacy = FleetSimulator(replicas(), policy="jsq", name="f")
        config = FleetSimulator(replicas(),
                                config=FleetConfig(policy="jsq", name="f"))
        assert legacy.name == config.name == "f"
        assert (legacy.run(_trace()).metrics()
                == config.run(_trace()).metrics())

    def test_config_plus_legacy_rejected(self):
        sched = SchedulerConfig().build(_budget())
        with pytest.raises(TypeError, match="not both"):
            FleetSimulator([Replica(0, sched, ConstantCostModel())],
                           policy="jsq", config=FleetConfig())

    def test_build_and_with_policy(self):
        cfg = FleetConfig(scheduler=SchedulerConfig(max_seqs=4),
                          name="fleet")
        sim = cfg.with_policy("round-robin").build(
            3, _budget(), ConstantCostModel(), name="fleet-3")
        assert sim.name == "fleet-3"
        assert sim.policy.name == "round-robin"
        assert len(sim.replicas) == 3
        assert all(r.scheduler.max_seqs == 4 for r in sim.replicas)
        report = sim.run(_trace())
        assert report.n_requests == 12


class TestReportProtocol:
    def test_both_reports_satisfy_protocol(self):
        sim = SimConfig(scheduler=SchedulerConfig(token_budget=128)).build(
            _budget(), ConstantCostModel())
        serving = sim.run(_trace())
        fleet = FleetConfig(scheduler=SchedulerConfig(token_budget=128)) \
            .build(2, _budget(), ConstantCostModel()).run(_trace())
        assert isinstance(serving, ServingReport)
        assert isinstance(fleet, FleetReport)
        for report in (serving, fleet):
            assert isinstance(report, Report)
            m = report.metrics()
            assert m and all(isinstance(v, (int, float))
                             for v in m.values())
            assert isinstance(report.summary(), str)

    def test_protocol_rejects_non_reports(self):
        assert not isinstance(object(), Report)
