"""Experiment-registry and CLI tests (cheap experiments only; the
expensive figures are exercised by the benchmark suite)."""

from repro.bench.ablation import ABLATIONS
from repro.bench.ablation import main as ablation_main
from repro.bench.ablation import quantization_overhead, \
    shuffle_threshold_sweep
from repro.bench.experiments import (
    EXPERIMENTS,
    main,
    tbl02_configs,
    tbl03_axes,
)
from repro.bench.harness import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig2", "fig4", "fig8", "fig9", "fig10", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig17acc",
                    "fig18", "tbl2", "tbl3", "tbl5"}
        assert expected <= set(EXPERIMENTS)

    def test_ablation_registry(self):
        assert {"bandwidth", "threshold", "floor",
                "quant-overhead"} <= set(ABLATIONS)


class TestCheapExperiments:
    def test_tbl2_returns_result(self):
        result = tbl02_configs()
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 5

    def test_tbl3_returns_result(self):
        result = tbl03_axes()
        assert len(result.rows) == 6

    def test_threshold_sweep(self):
        result = shuffle_threshold_sweep(thresholds=(5,))
        assert len(result.rows) == 1

    def test_quant_overhead(self):
        metrics = dict(quantization_overhead().rows)
        assert metrics["encode_vs_projection"] > 0


class TestCLI:
    def test_main_runs_named_experiment(self, capsys):
        assert main(["tbl3"]) == 0
        out = capsys.readouterr().out
        assert "Tbl. III" in out

    def test_main_rejects_unknown(self, capsys):
        assert main(["fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_ablation_main(self, capsys):
        assert ablation_main(["quant-overhead"]) == 0
        assert "quantization overhead" in capsys.readouterr().out

    def test_ablation_main_rejects_unknown(self, capsys):
        assert ablation_main(["nope"]) == 1
