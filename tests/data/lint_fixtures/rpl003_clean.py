"""Fixture: every tracer record call sits under an enabled guard."""


def run(sched, tracer, now_s):
    if tracer.enabled:
        tracer.event("admitted", now_s, 0, 1)
        tracer.step(0, now_s, 100.0, None, 0.5)
    if sched.tracer.enabled and now_s > 0:
        sched.tracer.record_sequences(0, [])
