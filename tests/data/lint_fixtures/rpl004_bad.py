"""Fixture: argparse option and dest collisions (RPL004 x2)."""
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace", default=None)
    parser.add_argument("--trace", action="store_true")      # RPL004: option
    parser.add_argument("--trace-out", dest="trace_out")
    parser.add_argument("--out", dest="trace_out")           # RPL004: dest
    return parser
