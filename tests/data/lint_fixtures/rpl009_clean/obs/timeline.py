"""Clean fixture: sampling driven purely by simulated time."""


class TimelineCollector:
    def __init__(self, window_s):
        self.window_s = window_s
        self.next_sample_s = window_s

    def sample(self, now_s, schedulers):
        depth = sum(len(s.waiting) for s in schedulers)
        self.next_sample_s = now_s + self.window_s
        return depth
