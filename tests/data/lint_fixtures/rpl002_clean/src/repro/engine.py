"""Fixture: simulated time is threaded in as an argument (no RPL002)."""


def step(state, now_s):
    state["stamp"] = now_s
    return now_s + state.get("step_s", 0.001)
