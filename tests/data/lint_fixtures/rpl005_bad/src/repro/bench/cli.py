"""Fixture: CLI builder passing a kwarg the config dropped (RPL005)."""
from repro.serve.api import SchedulerConfig


def build(args):
    return SchedulerConfig(token_budget=args.token_budget,
                           max_seqs=args.max_seqs)  # RPL005: unknown field
