"""Fixture: config class with a field the CLI never wires (RPL005)."""
from dataclasses import dataclass


@dataclass(frozen=True)
class SchedulerConfig:
    token_budget: int = 2048
    orphan_knob: float = 0.5  # RPL005: no CLI builder sets it
