"""Violating fixture: sampling code touching tracer and wall clock."""

import time


class TimelineCollector:
    def __init__(self, tracer, window_s):
        self.tracer = tracer
        self.window_s = window_s
        self.started = time.perf_counter()  # RPL009: wall clock

    def sample(self, now_s, sched):
        if self.tracer.enabled:
            # RPL009: guarded is still sampling-from-the-tracer.
            self.tracer.event("sample", t_s=now_s)
        self.tracer.step(now_s, [])  # RPL009 (and RPL003: unguarded)
        return len(sched.waiting)
