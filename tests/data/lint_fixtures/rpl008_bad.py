"""Fixture: bare round() on a split heuristic (RPL008 x2)."""


def optimal_split(cost, factor):
    split = round(cost * factor)            # RPL008
    return int(round(split / 2))            # RPL008
