"""Fixture: explicit rounding direction (no RPL008)."""
import math

import numpy as np


def optimal_split(cost, factor):
    split = math.floor(cost * factor + 0.5)  # explicit half-up
    return int(np.rint(split / 2))           # attribute call, not flagged
