"""Fixture: tracer record calls without an enabled guard (RPL003 x2)."""


def run(sched, tracer, now_s):
    tracer.event("admitted", now_s, 0, 1)               # RPL003
    sched.tracer.step(0, now_s, 100.0, None, 0.5)       # RPL003
    if tracer.enabled:
        tracer.request(1, now_s)                        # guarded: ok
