"""Fixture: CLI builder covering every config field (no RPL005)."""
import argparse

from repro.serve.api import SchedulerConfig


def build(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--token-budget", type=int, default=2048)
    parser.add_argument("--block-tokens", type=int, default=16)
    args = parser.parse_args(argv)
    return SchedulerConfig(token_budget=args.token_budget,
                           block_tokens=args.block_tokens)
