"""Fixture: every config field round-trips through the CLI builder."""
from dataclasses import dataclass


@dataclass(frozen=True)
class SchedulerConfig:
    token_budget: int = 2048
    block_tokens: int = 16
