"""Fixture: set iteration feeding an ordered report (RPL007 x3)."""


def report(metrics, extra):
    out = {}
    for key in set(metrics) | set(extra):       # RPL007
        out[key] = metrics.get(key, 0)
    rows = [k for k in {"ttft", "tpot"}]        # RPL007
    for name in frozenset(extra):               # RPL007
        out.setdefault(name, 0)
    return out, rows
