"""Fixture: wall-clock reads inside an engine module (RPL002 x2)."""
import time
from datetime import datetime


def step(state):
    started = time.perf_counter()           # RPL002
    state["stamp"] = datetime.now()         # RPL002
    return started
