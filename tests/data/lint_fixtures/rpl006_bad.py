"""Fixture: deprecation warned with the default category (RPL006)."""
import warnings


def legacy(old=None):
    if old is not None:
        warnings.warn("the 'old' kwarg is deprecated; use config=")  # RPL006
    return old
