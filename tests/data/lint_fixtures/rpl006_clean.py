"""Fixture: deprecation shims pass DeprecationWarning (no RPL006)."""
import warnings


def legacy(old=None):
    if old is not None:
        warnings.warn("the 'old' kwarg is deprecated; use config=",
                      DeprecationWarning, stacklevel=2)
    return old


def soon(old=None):
    if old is not None:
        warnings.warn("'old' will be deprecated next release",
                      category=PendingDeprecationWarning, stacklevel=2)
    return old
