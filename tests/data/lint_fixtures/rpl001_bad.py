"""Fixture: unseeded global-state RNG draws (RPL001 x3)."""
import random

import numpy as np


def jitter(n):
    noise = np.random.normal(size=n)        # RPL001
    pick = np.random.randint(0, n)          # RPL001
    return noise, pick, random.random()     # RPL001
