"""Fixture: all randomness threads a seeded Generator (no RPL001)."""
import random

import numpy as np


def jitter(n, seed=0):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(size=n), rng.integers(0, n), local.random()
