"""Fixture: distinct options and dests, aliases on one call (no RPL004)."""
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace-kind", "--trace", dest="trace_kind")
    parser.add_argument("--trace-out", default=None)
    parser.add_argument("--seed", type=int, default=0)
    return parser
