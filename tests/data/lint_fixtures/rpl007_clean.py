"""Fixture: set contents sorted before iteration (no RPL007)."""


def report(metrics, extra):
    out = {}
    for key in sorted(set(metrics) | set(extra)):
        out[key] = metrics.get(key, 0)
    wanted = {"ttft", "tpot"}
    if "ttft" in wanted:  # membership tests are fine
        out.setdefault("ttft", 0)
    return out
