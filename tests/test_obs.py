"""Unit and parity tests for :mod:`repro.obs`.

Two invariants anchor the observability layer:

1. **Tracing never moves a metric.**  The tracer is observation-only
   (append-only buffers, never read back during the run) and the
   metrics registry is built unconditionally from end-of-run state, so
   every serving/fleet ``metrics()`` dict is *equal* — not close —
   with tracing on and off.  The parity tests here run the PR-1 seed
   scenario and the prefix-caching chat scenario both ways.
2. **Histogram buckets are exact.**  ``bucket_index`` places a value
   in the bucket whose ``le``-inclusive upper bound is the first one
   not below it; hypothesis drives the boundary properties.
"""

import math
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.fleet import FleetReport, FleetSimulator, ReplicaStats
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b
from repro.obs import (
    EVT_ADMITTED,
    EVT_PREEMPTED,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.serve.api import FleetConfig


# ----------------------------------------------------------------------
# Counters / gauges
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    c = Counter("reqs_total")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert c.flat() == {"reqs_total": 4}
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_last_set():
    g = Gauge("occupancy")
    g.set(0.25)
    g.set(0.75)
    assert g.value == 0.75
    assert g.flat() == {"occupancy": 0.75}


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def test_histogram_validates_parameters():
    with pytest.raises(ValueError):
        Histogram("h", start=0.0)
    with pytest.raises(ValueError):
        Histogram("h", factor=1.0)
    with pytest.raises(ValueError):
        Histogram("h", n_buckets=0)
    with pytest.raises(ValueError):
        Histogram("h").observe(float("nan"))


@settings(max_examples=200, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=1e12,
                       allow_nan=False, allow_infinity=False),
       start=st.floats(min_value=1e-6, max_value=100.0),
       factor=st.floats(min_value=1.001, max_value=16.0),
       n_buckets=st.integers(min_value=1, max_value=48))
def test_histogram_bucket_bounds(value, start, factor, n_buckets):
    h = Histogram("h", start=start, factor=factor, n_buckets=n_buckets)
    i = h.bucket_index(value)
    bounds = h.boundaries
    if i == len(bounds):  # overflow bucket: above every finite bound
        assert value > bounds[-1]
    else:
        assert value <= bounds[i]
        if i > 0:
            assert value > bounds[i - 1]


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False, allow_infinity=False),
                       max_size=50))
def test_histogram_conservation_and_monotonicity(values):
    h = Histogram("h", start=0.5, factor=2.0, n_buckets=12)
    for v in values:
        h.observe(v)
    assert h.total == len(values)
    assert sum(h.counts) == len(values)
    assert math.isclose(h.sum, sum(values), rel_tol=1e-9, abs_tol=1e-9)
    cum = h.cumulative_counts()
    assert cum == sorted(cum)
    assert cum[-1] == len(values)


def test_histogram_prometheus_buckets_are_cumulative():
    h = Histogram("lat", start=1.0, factor=2.0, n_buckets=3)
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    samples = dict(((name, labels.get("le")), value)
                   for name, labels, value in h.samples())
    # Integral boundaries render bare ("1", not "1.0").
    assert samples[("lat_bucket", "1")] == 2  # le-inclusive
    assert samples[("lat_bucket", "4")] == 3
    assert samples[("lat_bucket", "+Inf")] == 4
    assert samples[("lat_count", None)] == 4


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("hits_total")
    b = reg.counter("hits_total")
    assert a is b
    a.inc(2)
    assert reg.to_flat_dict() == {"hits_total": 2}


def test_registry_rejects_kind_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_labels_create_distinct_series():
    reg = MetricsRegistry()
    reg.counter("steps_total", replica="0").inc(3)
    reg.counter("steps_total", replica="1").inc(5)
    text = reg.to_prometheus()
    assert 'steps_total{replica="0"} 3' in text
    assert 'steps_total{replica="1"} 5' in text
    # HELP/TYPE headers appear once per metric name, not per series.
    assert text.count("# TYPE steps_total counter") == 1


def test_registry_prometheus_histogram_shape():
    reg = MetricsRegistry()
    reg.histogram("ttft_ms", start=1.0, factor=2.0, n_buckets=2).observe(1.5)
    text = reg.to_prometheus()
    assert "# TYPE ttft_ms histogram" in text
    assert 'ttft_ms_bucket{le="+Inf"} 1' in text
    assert "ttft_ms_sum 1.5" in text
    assert "ttft_ms_count 1" in text


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class _Plan:
    """Minimal stand-in for a scheduler batch plan."""

    def __init__(self, prefill=(), decode=()):
        self.prefill = list(prefill)
        self.decode = list(decode)


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    # All hooks are no-ops; nothing to assert beyond "does not raise".
    NULL_TRACER.step(0, 0.0, 150.0, _Plan(), 0.5)
    NULL_TRACER.event(EVT_ADMITTED, 0.0, 0, 1)
    NULL_TRACER.record_sequences(0, [])


def test_tracer_records_steps_and_events():
    tr = Tracer(name="t")
    assert tr.enabled is True
    tr.step(0, 1.0, 150.0, _Plan(decode=[object()] * 3), 0.25)
    tr.step(1, 2.0, 150.0, _Plan(), 0.5)
    tr.event(EVT_PREEMPTED, 1.5, 0, 7, value=32)
    assert tr.n_steps == 2
    assert tr.replicas == [0, 1]
    (kind, t_s, replica, req_id, value), = tr.events_of_kind(EVT_PREEMPTED)
    assert (replica, req_id, value) == (0, 7, 32)
    assert t_s == 1.5


# ----------------------------------------------------------------------
# Tracing parity: metrics must be equal with tracing on and off
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine():
    return ComputeEngine(RTX4090)


#: The PR-1 seed scenario (see tools/record_goldens.py).
SEED_WORKLOAD = dict(kv_hbm_gb=4.0, rate_rps=16.0, n_requests=64,
                     prompt_mean=384, output_mean=96, seed=0)

#: Paged + prefix-caching chat variant at a tight KV budget.
PREFIX_WORKLOAD = dict(kv_hbm_gb=2.0, rate_rps=16.0, n_requests=48,
                       prompt_mean=256, output_mean=64, seed=0,
                       trace_kind="chat", admission="paged",
                       prefix_caching=True)


@pytest.mark.parametrize("workload", [SEED_WORKLOAD, PREFIX_WORKLOAD],
                         ids=["seed", "prefix-chat"])
def test_serving_metrics_identical_with_tracing(engine, workload):
    from repro.bench.serving import simulate_mode

    config = llama_7b()
    off = simulate_mode("fp16", config=config, engine=engine,
                        trace=False, **workload)
    on = simulate_mode("fp16", config=config, engine=engine,
                       trace=True, **workload)
    assert off.tracer is None
    assert on.tracer is not None
    assert on.metrics() == off.metrics()
    # The enabled tracer actually observed the run.
    assert on.tracer.n_steps > 0
    assert on.tracer.n_requests == on.n_requests


def test_fleet_metrics_identical_with_tracing(engine):
    from repro.bench.cluster import make_replicas
    from repro.bench.serving import make_trace

    config = llama_7b()
    trace = make_trace("poisson", 12.0, 24, 128, 32, seed=0)
    runs = {}
    for record in (False, True):
        replicas = make_replicas(2, "fp16", config=config, engine=engine)
        runs[record] = FleetSimulator(
            replicas, config=FleetConfig(policy="jsq",
                                         trace=record)).run(trace)
    assert runs[False].metrics() == runs[True].metrics()
    assert runs[False].tracer is None
    assert sorted(runs[True].tracer.replicas) == [0, 1]


# ----------------------------------------------------------------------
# EventStats surfaced in metrics
# ----------------------------------------------------------------------
def test_serving_metrics_include_event_stats(engine):
    from repro.bench.serving import simulate_mode

    rep = simulate_mode("fp16", config=llama_7b(), engine=engine,
                        n_requests=16, **{k: v for k, v in
                                          SEED_WORKLOAD.items()
                                          if k != "n_requests"})
    m = rep.metrics()
    assert m["n_events"] >= m["n_arrivals"] == 16
    # The single-engine loop steps inline (no STEP events) and never
    # idle-polls; both keys still surface for uniformity with fleets.
    assert m["n_step_events"] == 0
    assert m["n_idle_polls"] == 0
    # Registry-backed keys ride along in the same dict.
    assert m["requests_completed_total"] == rep.n_requests
    assert m["sched_admissions_total"] >= rep.n_requests


def test_fleet_metrics_include_event_stats(engine):
    from repro.bench.cluster import make_replicas
    from repro.bench.serving import make_trace

    trace = make_trace("poisson", 12.0, 24, 128, 32, seed=0)
    replicas = make_replicas(2, "fp16", config=llama_7b(), engine=engine)
    rep = FleetSimulator(replicas,
                         config=FleetConfig(policy="jsq")).run(trace)
    m = rep.metrics()
    assert m["n_events"] > 0
    assert m["n_arrivals"] == 24
    assert m["requests_completed_total"] == rep.n_requests


# ----------------------------------------------------------------------
# ReplicaStats dataclass + legacy tuple shim
# ----------------------------------------------------------------------
def test_replica_stats_tuple_compatibility():
    stats = ReplicaStats(n_requests=5, n_iterations=100,
                         peak_kv_utilization=0.75, n_preemptions=2)
    assert len(stats) == 4
    assert tuple(stats) == (5, 100, 0.75, 2)
    assert stats[0] == 5 and stats[-1] == 2
    routed, iters, peak, preempted = stats
    assert (routed, iters, peak, preempted) == (5, 100, 0.75, 2)


def test_fleet_report_accepts_legacy_tuples_with_warning():
    with pytest.warns(DeprecationWarning, match="positional tuples"):
        report = FleetReport(name="legacy", policy="jsq", n_replicas=2,
                             records=[], assignments={}, makespan_s=1.0,
                             replica_stats=[(3, 10, 0.5, 1),
                                            (2, 8, 0.25, 0)])
    assert all(isinstance(s, ReplicaStats) for s in report.replica_stats)
    assert report.replica_stats[0].n_requests == 3
    assert report.n_preempted == 1


def test_fleet_report_replica_stats_no_warning_for_dataclass():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        report = FleetReport(name="ok", policy="jsq", n_replicas=1,
                             records=[], assignments={}, makespan_s=1.0,
                             replica_stats=[ReplicaStats(1, 2, 0.1)])
    assert report.replica_stats[0].n_iterations == 2


# ----------------------------------------------------------------------
# Scheduler / allocator emit_metrics
# ----------------------------------------------------------------------
def test_scheduler_emit_metrics_keys(engine):
    from repro.bench.serving import simulate_mode

    rep = simulate_mode("fp16", config=llama_7b(), engine=engine,
                        **dict(PREFIX_WORKLOAD, n_requests=16))
    m = rep.metrics()
    for key in ("sched_admissions_total", "sched_preemptions_total",
                "sched_peak_seqs", "kv_peak_occupancy", "kv_blocks_total",
                "prefix_lookups_total", "prefix_cached_blocks"):
        assert key in m, key
