"""Element-wise quantization baseline tests."""

import numpy as np
import pytest

from repro.vq.elementwise import (
    awq_quantize_weight,
    dequantize_elementwise,
    qoq_quantize_kv,
    quantize_elementwise,
)


class TestQuantizeElementwise:
    def test_roundtrip_error_bounded_by_step(self, weight):
        q = quantize_elementwise(weight, bits=8, group_size=64)
        err = np.abs(q.dequantize() - weight)
        # Error bounded by one quantization step per group.
        steps = np.repeat(q.scales[:, :, 0], 64, axis=1)
        assert np.all(err <= steps + 1e-9)

    def test_more_bits_less_error(self, weight):
        e4 = np.mean((quantize_elementwise(weight, 4).dequantize()
                      - weight) ** 2)
        e8 = np.mean((quantize_elementwise(weight, 8).dequantize()
                      - weight) ** 2)
        assert e8 < e4

    def test_codes_in_range(self, weight):
        q = quantize_elementwise(weight, bits=4, group_size=64)
        assert q.codes.min() >= 0
        assert q.codes.max() <= 15

    def test_smaller_groups_less_error(self, weight):
        coarse = quantize_elementwise(weight, 4, group_size=256)
        fine = quantize_elementwise(weight, 4, group_size=32)
        assert (np.mean((fine.dequantize() - weight) ** 2)
                < np.mean((coarse.dequantize() - weight) ** 2))

    def test_storage_accounting(self, weight):
        q = quantize_elementwise(weight, bits=4, group_size=64)
        n = weight.size
        assert q.quantized_bytes == pytest.approx(
            n * 0.5 + (n / 64) * 4)

    def test_constant_group_handled(self):
        data = np.ones((4, 64))
        q = quantize_elementwise(data, bits=4, group_size=64)
        assert np.allclose(q.dequantize(), data, atol=1e-6)

    def test_validation(self, weight):
        with pytest.raises(ValueError):
            quantize_elementwise(weight, bits=1)
        with pytest.raises(ValueError):
            quantize_elementwise(weight, bits=4, group_size=100)
        with pytest.raises(ValueError):
            quantize_elementwise(np.zeros(16), bits=4)

    def test_dequantize_function_matches_method(self, weight):
        q = quantize_elementwise(weight, bits=4, group_size=64)
        assert np.allclose(dequantize_elementwise(q), q.dequantize())


class TestAWQ:
    def test_awq_beats_plain_quantization(self, weight):
        plain = quantize_elementwise(weight, bits=4, group_size=64)
        awq = awq_quantize_weight(weight, bits=4, group_size=64)
        plain_err = np.mean((plain.dequantize() - weight) ** 2)
        awq_err = np.mean((awq.dequantize() - weight) ** 2)
        assert awq_err <= plain_err * 1.01

    def test_awq_storage_includes_col_scales(self, weight):
        awq = awq_quantize_weight(weight, bits=4, group_size=64)
        plain = quantize_elementwise(weight, bits=4, group_size=64)
        assert awq.quantized_bytes > plain.quantized_bytes

    def test_awq_shape(self, weight):
        awq = awq_quantize_weight(weight, bits=4, group_size=64)
        assert awq.dequantize().shape == weight.shape


class TestQoQ:
    def test_qoq_roundtrip(self, kv_data):
        q = qoq_quantize_kv(kv_data, bits=4, group_size=64)
        rel = (np.mean((q.dequantize() - kv_data) ** 2)
               / np.var(kv_data))
        assert rel < 0.1

    def test_qoq_bits(self, kv_data):
        q = qoq_quantize_kv(kv_data, bits=4)
        assert q.bits == 4
