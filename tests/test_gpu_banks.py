"""Bank-conflict model tests."""

import numpy as np
import pytest

from repro.gpu.banks import BankConflictModel, warp_conflict_degree
from repro.gpu.spec import RTX4090


class TestWarpConflictDegree:
    def test_broadcast_is_free(self):
        # All lanes read the same entry: one transaction.
        assert warp_conflict_degree([5] * 32, entry_bytes=4) == 1

    def test_perfectly_strided_single_word(self):
        # 32 lanes reading entries 0..31 of 4-byte entries: one word per
        # bank, conflict-free.
        assert warp_conflict_degree(list(range(32)), entry_bytes=4) == 1

    def test_stride_collision(self):
        # Entries 0, 32, 64, ... of 4-byte entries all map to bank 0.
        indices = [i * 32 for i in range(32)]
        assert warp_conflict_degree(indices, entry_bytes=4) == 32

    def test_multiword_entries_raise_degree(self):
        # 8-byte entries: each access touches 2 banks; 32 lanes reading
        # 32 distinct consecutive entries need 2 words per bank.
        assert warp_conflict_degree(list(range(32)), entry_bytes=8) == 2

    def test_sixteen_byte_entries(self):
        assert warp_conflict_degree(list(range(32)), entry_bytes=16) == 4

    def test_empty_warp(self):
        assert warp_conflict_degree([], entry_bytes=8) == 0

    def test_rejects_nonpositive_entry_bytes(self):
        with pytest.raises(ValueError):
            warp_conflict_degree([0], entry_bytes=0)

    def test_worst_case_exceeds_ideal(self):
        # Random skewed indices over many entries conflict more than
        # the ideal multi-word floor.
        rng = np.random.default_rng(0)
        indices = (rng.integers(0, 256, size=32) * 8) % 256
        degree = warp_conflict_degree(indices.tolist(), entry_bytes=16)
        assert degree >= 4


class TestBankConflictModel:
    def test_register_resident_entries_bypass_shared(self):
        model = BankConflictModel(RTX4090, entry_bytes=8)
        stream = np.zeros(32 * 64, dtype=np.int64)  # all index 0
        # With index 0 register-resident, no shared access remains.
        assert model.average_degree(stream, register_resident=1) == 0.0

    def test_global_resident_entries_bypass_shared(self):
        model = BankConflictModel(RTX4090, entry_bytes=8)
        stream = np.full(32 * 16, 100, dtype=np.int64)
        assert model.average_degree(stream, shared_resident=50) == 0.0

    def test_degree_at_least_one_for_shared_accesses(self):
        model = BankConflictModel(RTX4090, entry_bytes=8)
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 256, size=32 * 128)
        assert model.average_degree(stream) >= 1.0

    def test_register_caching_hot_entries_reduces_degree(self):
        # A Zipf-like stream: entry 0 is extremely hot and collides.
        model = BankConflictModel(RTX4090, entry_bytes=8)
        rng = np.random.default_rng(2)
        zipf = np.minimum(rng.zipf(1.3, size=32 * 256) - 1, 255)
        base = model.average_degree(zipf, register_resident=0)
        cached = model.average_degree(zipf, register_resident=8)
        assert cached <= base

    def test_sampling_is_deterministic(self):
        model = BankConflictModel(RTX4090, entry_bytes=8)
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 256, size=32 * 5000)
        a = model.average_degree(stream, max_warps=128)
        b = model.average_degree(stream, max_warps=128)
        assert a == b

    def test_short_stream_single_partial_warp(self):
        model = BankConflictModel(RTX4090, entry_bytes=4)
        assert model.average_degree(np.array([1, 2, 3])) == 1.0

    def test_empty_stream(self):
        model = BankConflictModel(RTX4090, entry_bytes=8)
        assert model.average_degree(np.array([], dtype=np.int64)) == 0.0

    def test_rejects_bad_entry_bytes(self):
        with pytest.raises(ValueError):
            BankConflictModel(RTX4090, entry_bytes=-2)
