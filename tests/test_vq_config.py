"""VQConfig and Tbl. II preset tests."""

import pytest

from repro.vq.algorithms import ALGORITHMS, canonical_name, make_config
from repro.vq.config import VQConfig


class TestVQConfig:
    def test_spec_string(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=2)
        assert cfg.spec_string() == "VQ<4,8,2>"

    def test_entries_from_bits(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=1)
        assert cfg.n_entries == 256

    def test_bits_per_element(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=2)
        assert cfg.bits_per_element == pytest.approx(4.0)

    def test_codebook_bytes_fp16(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=1)
        assert cfg.entry_bytes == 8
        assert cfg.codebook_bytes == 256 * 8

    def test_lattice_lookup_entries(self):
        cfg = VQConfig("q", vector_size=8, index_bits=16, residuals=2,
                       lattice=True)
        assert cfg.n_entries == 65536
        assert cfg.lookup_entries == 256
        assert cfg.entry_element_bytes == 1
        assert cfg.codebook_bytes == 2048  # the paper's 2 KB

    def test_quantized_bytes(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=1)
        # 1024 elements -> 256 codes x 1 byte.
        assert cfg.quantized_bytes(1024) == 256

    def test_codes_per_row(self):
        cfg = VQConfig("x", vector_size=4, index_bits=8, residuals=1)
        assert cfg.codes_per_row(128) == 32
        with pytest.raises(ValueError):
            cfg.codes_per_row(130)

    def test_aligned_index_widths(self):
        assert VQConfig("a", 4, 8, 1).aligned_index
        assert VQConfig("b", 8, 16, 1).aligned_index
        assert not VQConfig("c", 8, 12, 1).aligned_index  # AQLM

    @pytest.mark.parametrize("bad", [
        dict(vector_size=0, index_bits=8, residuals=1),
        dict(vector_size=4, index_bits=0, residuals=1),
        dict(vector_size=4, index_bits=17, residuals=1),
        dict(vector_size=4, index_bits=8, residuals=0),
        dict(vector_size=4, index_bits=8, residuals=1, scope="bogus"),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            VQConfig("bad", **bad)


class TestTable2Presets:
    """The exact rows of Tbl. II."""

    @pytest.mark.parametrize("name,ratio,vector,entries,residuals", [
        ("quip#-4", 0.25, 8, 65536, 2),
        ("aqlm-3", 0.1875, 8, 4096, 2),
        ("gptvq-2", 0.125, 4, 256, 1),
        ("cq-4", 0.25, 2, 256, 1),
        ("cq-2", 0.125, 4, 256, 1),
    ])
    def test_config_matches_paper(self, name, ratio, vector, entries,
                                  residuals):
        cfg = ALGORITHMS[name]
        assert cfg.compression_ratio == pytest.approx(ratio)
        assert cfg.vector_size == vector
        assert cfg.n_entries == entries
        assert cfg.residuals == residuals

    def test_scopes(self):
        assert ALGORITHMS["quip#-4"].scope == "tensor"
        assert ALGORITHMS["aqlm-3"].scope == "tensor"
        assert ALGORITHMS["gptvq-2"].scope == "tile"
        assert ALGORITHMS["cq-2"].scope == "channel_group"

    def test_gptvq_tile_shape(self):
        assert ALGORITHMS["gptvq-2"].tile_shape == (256, 256)

    def test_only_quip_is_lattice(self):
        assert ALGORITHMS["quip#-4"].lattice
        assert not any(ALGORITHMS[k].lattice for k in ALGORITHMS
                       if k != "quip#-4")

    def test_aqlm_misaligned_12bit(self):
        assert ALGORITHMS["aqlm-3"].index_bits == 12
        assert not ALGORITHMS["aqlm-3"].aligned_index

    def test_canonical_name_aliases(self):
        assert canonical_name("QuiP#-4") == "quip#-4"
        assert canonical_name("CQ2") == "cq-2"
        assert canonical_name("aqlm_3") == "aqlm-3"
        with pytest.raises(KeyError):
            canonical_name("nonexistent-vq")

    def test_make_config_returns_preset(self):
        assert make_config("gptvq-2") is ALGORITHMS["gptvq-2"]
