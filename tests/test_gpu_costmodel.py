"""Cost-model tests: the latency arithmetic the experiments rest on."""

import pytest

from repro.gpu.costmodel import LAUNCH_OVERHEAD_S, CostModel
from repro.gpu.counters import PerfCounters
from repro.gpu.spec import A40, RTX4090


def _streaming_counters(gb=1.0, threads=256, regs=32, smem=8192,
                        blocks=4096):
    return PerfCounters(
        dram_bytes=gb * 1e9,
        threads_per_block=threads,
        regs_per_thread=regs,
        smem_per_block=smem,
        grid_blocks=blocks,
    )


class TestCostModel:
    def test_memory_bound_latency_tracks_bandwidth(self):
        model = CostModel(RTX4090)
        lat = model.latency(_streaming_counters(gb=1.0))
        ideal_s = 1e9 / RTX4090.dram_bytes_per_s
        assert lat.total_s >= ideal_s
        assert lat.total_s < 3 * ideal_s
        assert lat.bound == "dram"

    def test_lower_bandwidth_gpu_is_slower(self):
        fast = CostModel(RTX4090).latency(_streaming_counters()).total_s
        slow = CostModel(A40).latency(_streaming_counters()).total_s
        assert slow > fast

    def test_compute_bound_kernel(self):
        c = _streaming_counters(gb=0.001)
        c.flops = 1e12
        lat = CostModel(RTX4090).latency(c)
        assert lat.bound == "compute"
        assert lat.compute_s >= 1e12 / RTX4090.peak_flops

    def test_low_occupancy_degrades_bandwidth(self):
        model = CostModel(RTX4090)
        good = model.latency(_streaming_counters(smem=8192)).total_s
        # One fat block per SM.
        bad = model.latency(_streaming_counters(smem=96 * 1024)).total_s
        assert bad > good

    def test_launch_overhead_floor(self):
        lat = CostModel(RTX4090).latency(_streaming_counters(gb=1e-6))
        assert lat.total_s >= LAUNCH_OVERHEAD_S

    def test_extra_launches_add_overhead(self):
        model = CostModel(RTX4090)
        one = _streaming_counters(gb=1e-6)
        two = _streaming_counters(gb=1e-6)
        two.kernel_launches = 2
        assert (model.latency(two).total_s
                == pytest.approx(model.latency(one).total_s
                                 + LAUNCH_OVERHEAD_S))

    def test_stall_cycles_add_latency(self):
        model = CostModel(RTX4090)
        base = _streaming_counters(gb=0.001)
        stalled = _streaming_counters(gb=0.001)
        stalled.stall_cycles = 1e9
        assert (model.latency(stalled).compute_s
                > model.latency(base).compute_s)
        assert (model.latency(stalled).total_s
                > model.latency(base).total_s)

    def test_bank_conflicts_add_latency(self):
        model = CostModel(RTX4090)
        base = _streaming_counters(gb=0.001)
        conflicted = _streaming_counters(gb=0.001)
        conflicted.bank_conflict_transactions = 5e7
        assert (model.latency(conflicted).total_s
                > model.latency(base).total_s)

    def test_unschedulable_block_does_not_crash(self):
        c = _streaming_counters(smem=RTX4090.smem_per_block_max + 4096)
        lat = CostModel(RTX4090).latency(c)
        assert lat.total_s > 0
        assert lat.occupancy <= 1.0 / RTX4090.max_warps_per_sm + 1e-9

    def test_small_grid_limits_sm_utilization(self):
        model = CostModel(RTX4090)
        narrow = _streaming_counters(blocks=8)
        wide = _streaming_counters(blocks=4096)
        assert (model.latency(narrow).total_s
                > model.latency(wide).total_s)

    def test_reduction_bytes_count_as_dram(self):
        model = CostModel(RTX4090)
        base = _streaming_counters()
        reduced = _streaming_counters()
        reduced.reduction_bytes = 1e9
        assert (model.latency(reduced).dram_s
                > model.latency(base).dram_s)

    def test_latency_us_helper(self):
        model = CostModel(RTX4090)
        c = _streaming_counters()
        assert model.latency_us(c) == pytest.approx(
            model.latency(_streaming_counters()).total_us)


class TestEfficiencyCurves:
    def test_bandwidth_efficiency_saturates(self):
        model = CostModel(RTX4090)
        assert model.bandwidth_efficiency(1.0, 1.0) > 0.9
        assert model.bandwidth_efficiency(0.1, 1.0) < 0.7
        assert model.bandwidth_efficiency(0.0, 1.0) >= 1e-3

    def test_efficiency_monotone_in_occupancy(self):
        model = CostModel(RTX4090)
        values = [model.bandwidth_efficiency(o, 1.0)
                  for o in (0.05, 0.1, 0.25, 0.5, 1.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_idle_sms_cut_bandwidth(self):
        model = CostModel(RTX4090)
        assert (model.bandwidth_efficiency(0.5, 0.25)
                < model.bandwidth_efficiency(0.5, 1.0))
