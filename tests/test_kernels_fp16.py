"""FP16 kernel model tests."""

import numpy as np
import pytest

from repro.gpu.costmodel import CostModel
from repro.gpu.spec import RTX4090
from repro.kernels.attention import (
    AttentionShape,
    FlashAttentionKernel,
    FlashDecodingKernel,
    FlashPrefillKernel,
    PagedFlashAttentionKernel,
    PagedFlashDecodingKernel,
)
from repro.kernels.gemm import (
    FP16GemmKernel,
    FP16GemvKernel,
    GemmShape,
    gemv_split_k,
)
from repro.llm.attention import attention_decode, attention_prefill


class TestGemm:
    def test_flops(self):
        s = GemmShape(128, 256, 512)
        assert s.flops == 2 * 128 * 256 * 512

    def test_numeric_execution(self):
        rng = np.random.default_rng(0)
        a, w = rng.standard_normal((8, 16)), rng.standard_normal((16, 4))
        k = FP16GemmKernel(GemmShape(8, 4, 16), a=a, w=w)
        assert np.allclose(k.execute(), a @ w)

    def test_large_gemm_is_compute_or_dram_bound(self):
        k = FP16GemmKernel(GemmShape(4096, 4096, 4096))
        lat = CostModel(RTX4090).latency(k.counters(RTX4090))
        assert lat.bound in ("compute", "dram")

    def test_latency_scales_with_size(self):
        small = FP16GemmKernel(GemmShape(512, 512, 512)).latency_us(RTX4090)
        big = FP16GemmKernel(GemmShape(2048, 2048, 2048)).latency_us(RTX4090)
        assert big > 5 * small


class TestGemv:
    def test_memory_bound_on_weight(self):
        shape = GemmShape(1, 4096, 4096)
        k = FP16GemvKernel(shape)
        c = k.counters(RTX4090)
        # Weight bytes dominate DRAM traffic.
        assert c.dram_bytes >= 4096 * 4096 * 2

    def test_split_k_fills_gpu(self):
        shape = GemmShape(1, 4096, 4096)
        split = gemv_split_k(shape, RTX4090)
        blocks = (4096 // 128) * split
        assert blocks >= RTX4090.sm_count

    def test_split_k_one_for_wide_outputs(self):
        shape = GemmShape(1, 65536, 4096)
        assert gemv_split_k(shape, RTX4090) == 1

    def test_rejects_large_batch(self):
        with pytest.raises(ValueError):
            FP16GemvKernel(GemmShape(128, 4096, 4096))

    def test_numeric_execution(self):
        rng = np.random.default_rng(1)
        a, w = rng.standard_normal((2, 32)), rng.standard_normal((32, 8))
        k = FP16GemvKernel(GemmShape(2, 8, 32), a=a, w=w)
        assert np.allclose(k.execute(), a @ w)


class TestAttention:
    SHAPE = AttentionShape(batch=1, heads=32, seq_len=1024, head_dim=128)

    def test_kv_bytes(self):
        assert self.SHAPE.kv_bytes == 2 * 32 * 1024 * 128 * 2

    def test_flash_decoding_beats_flash_attention_small_batch(self):
        fd = FlashDecodingKernel(self.SHAPE).latency_us(RTX4090)
        fa = FlashAttentionKernel(self.SHAPE).latency_us(RTX4090)
        assert fd < fa

    def test_equal_at_large_batch(self):
        shape = AttentionShape(batch=16, heads=32, seq_len=1024,
                               head_dim=128)
        fd = FlashDecodingKernel(shape).latency_us(RTX4090)
        fa = FlashAttentionKernel(shape).latency_us(RTX4090)
        # B*H = 512 blocks fill the GPU; token split gains nothing.
        assert fd == pytest.approx(fa, rel=0.05)

    def test_paged_variants_slightly_slower(self):
        fd = FlashDecodingKernel(self.SHAPE).latency_us(RTX4090)
        paged = PagedFlashDecodingKernel(self.SHAPE).latency_us(RTX4090)
        assert fd < paged < fd * 1.3

        fa = FlashAttentionKernel(self.SHAPE).latency_us(RTX4090)
        paged_fa = PagedFlashAttentionKernel(self.SHAPE).latency_us(RTX4090)
        assert fa < paged_fa < fa * 1.3

    def test_latency_scales_with_sequence(self):
        short = FlashDecodingKernel(self.SHAPE).latency_us(RTX4090)
        long_shape = AttentionShape(1, 32, 8192, 128)
        long = FlashDecodingKernel(long_shape).latency_us(RTX4090)
        assert long > 3 * short

    def test_numeric_execution_decode(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((1, 2, 16))
        k = rng.standard_normal((1, 2, 8, 16))
        v = rng.standard_normal((1, 2, 8, 16))
        kernel = FlashDecodingKernel(AttentionShape(1, 2, 8, 16),
                                     q=q, k=k, v=v)
        assert np.allclose(kernel.execute(), attention_decode(q, k, v))

    def test_numeric_execution_prefill(self):
        rng = np.random.default_rng(3)
        q = rng.standard_normal((1, 2, 8, 16))
        k = rng.standard_normal((1, 2, 8, 16))
        v = rng.standard_normal((1, 2, 8, 16))
        kernel = FlashPrefillKernel(AttentionShape(1, 2, 8, 16),
                                    q=q, k=k, v=v)
        assert np.allclose(kernel.execute(),
                           attention_prefill(q, k, v, causal=True))
