"""Paged KV allocation, preemption and admission-policy tests.

Covers the paging invariants the subsystem promises — block
conservation (allocated + free == pool) across admit/advance/preempt/
finish, no block leak after preemption — plus the equivalence guarantee
that ``admission="reserve"`` exactly reproduces the legacy (PR-1)
scheduler's ``ServingReport``, verified against a verbatim copy of the
legacy implementation on the PR-1 seed scenario.
"""

import random
from collections import deque

import pytest

from repro.llm.config import llama_7b
from repro.serve.paging import PagedKVAllocator
from repro.serve.requests import Request
from repro.serve.sanitize import SanitizeError
from repro.serve.scheduler import (
    BatchPlan,
    ContinuousBatchScheduler,
    KVBudget,
    SequenceState,
)
from repro.serve.simulator import ServingSimulator


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _req(i, prompt=64, output=16, arrival=0.0):
    return Request(req_id=i, arrival_s=arrival, prompt_tokens=prompt,
                   output_tokens=output)


def _paged(max_tokens=200, token_budget=256, max_seqs=16, block_tokens=8,
           watermark_frac=0.0):
    budget = KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0)
    return ContinuousBatchScheduler(budget, token_budget=token_budget,
                                    max_seqs=max_seqs, admission="paged",
                                    block_tokens=block_tokens,
                                    watermark_frac=watermark_frac)


class TestPagedKVAllocator:
    def test_from_budget_block_math(self):
        cfg = llama_7b()
        budget = KVBudget.for_model(cfg, 4e9)  # 512 KiB/token FP16
        alloc = PagedKVAllocator.from_budget(budget, block_tokens=16)
        assert alloc.bytes_per_block == 16 * budget.bytes_per_token
        assert alloc.total_blocks == int(4e9 // alloc.bytes_per_block)
        # Whole blocks only: the pool never exceeds the byte budget.
        assert alloc.total_blocks * alloc.bytes_per_block <= 4e9

    def test_from_budget_subtracts_codebook_overhead(self):
        budget = KVBudget(capacity_bytes=1000.0, bytes_per_token=1.0,
                          overhead_bytes=100.0)
        alloc = PagedKVAllocator.from_budget(budget, block_tokens=10)
        assert alloc.total_blocks == 90

    def test_from_budget_rejects_block_larger_than_pool(self):
        budget = KVBudget(capacity_bytes=10.0, bytes_per_token=1.0)
        with pytest.raises(ValueError):
            PagedKVAllocator.from_budget(budget, block_tokens=16)

    def test_blocks_for_tokens_ceil(self):
        alloc = PagedKVAllocator(total_blocks=10, block_tokens=16)
        assert alloc.blocks_for_tokens(0) == 0
        assert alloc.blocks_for_tokens(1) == 1
        assert alloc.blocks_for_tokens(16) == 1
        assert alloc.blocks_for_tokens(17) == 2

    def test_ensure_release_conserves_blocks(self):
        alloc = PagedKVAllocator(total_blocks=10, block_tokens=4)
        assert alloc.ensure(0, 9)   # 3 blocks
        assert alloc.ensure(1, 20)  # 5 blocks
        assert alloc.used_blocks == 8 and alloc.free_blocks == 2
        assert alloc.used_blocks + alloc.free_blocks == alloc.total_blocks
        # Growing within the held blocks allocates nothing new.
        assert alloc.ensure(0, 12)
        assert alloc.holds(0) == 3
        assert alloc.release(1) == 5
        assert alloc.used_blocks == 3 and alloc.free_blocks == 7
        assert alloc.holds(1) == 0
        if alloc.sanitize:
            # Sanitize mode promotes the lenient no-op into the
            # double-free it usually is.
            with pytest.raises(SanitizeError):
                alloc.release(1)
        else:
            assert alloc.release(1) == 0

    def test_failed_ensure_allocates_nothing(self):
        alloc = PagedKVAllocator(total_blocks=4, block_tokens=4)
        assert alloc.ensure(0, 12)  # 3 blocks
        assert not alloc.ensure(1, 8)  # needs 2, only 1 free
        assert alloc.holds(1) == 0
        assert alloc.free_blocks == 1
        # The holder can still use its own slack and the last free block.
        assert alloc.ensure(0, 16)
        assert alloc.free_blocks == 0

    def test_stats_and_fragmentation(self):
        alloc = PagedKVAllocator(total_blocks=8, block_tokens=16)
        alloc.ensure(0, 17)  # 2 blocks, 32 slots, 17 live
        stats = alloc.stats()
        assert stats.used_blocks == 2 and stats.free_blocks == 6
        assert stats.used_fraction == pytest.approx(0.25)
        assert stats.fragmentation == pytest.approx(1 - 17 / 32)
        assert stats.peak_used_blocks == 2
        alloc.release(0)
        empty = alloc.stats()
        assert empty.fragmentation == 0.0
        assert empty.peak_used_blocks == 2  # high-water mark survives

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedKVAllocator(total_blocks=0, block_tokens=8)
        with pytest.raises(ValueError):
            PagedKVAllocator(total_blocks=8, block_tokens=0)


class TestPagedScheduling:
    def test_admits_beyond_worst_case(self):
        """Paged admission needs prompt blocks only, so it runs more
        concurrent sequences than worst-case reservations allow."""
        budget = KVBudget(capacity_bytes=200.0, bytes_per_token=1.0)
        reserve = ContinuousBatchScheduler(budget, token_budget=1024,
                                           max_seqs=16)
        paged = ContinuousBatchScheduler(budget, token_budget=1024,
                                         max_seqs=16, admission="paged",
                                         block_tokens=8, watermark_frac=0.0)
        for sched in (reserve, paged):
            for i in range(8):
                sched.submit(_req(i, prompt=16, output=84))  # 100 worst-case
            sched.schedule()
        assert len(reserve.running) == 2   # 2 x 100-token reservations
        assert len(paged.running) > 2 * len(reserve.running)

    def test_block_conservation_through_lifecycle(self):
        """allocated + free == pool after every admit/advance/preempt/
        finish, and preempted sequences hold zero blocks."""
        sched = _paged(max_tokens=200, token_budget=64, max_seqs=16)
        for i in range(10):
            sched.submit(_req(i, prompt=16, output=24))
        alloc = sched.allocator
        iters = 0
        while sched.has_work:
            plan = sched.schedule(float(iters))
            assert not plan.empty
            sched.complete(plan, float(iters))
            assert (alloc.used_blocks + alloc.free_blocks
                    == alloc.total_blocks)
            held = sum(alloc.holds(s.request.req_id)
                       for s in sched.running)
            assert alloc.used_blocks == held
            for seq in sched.preempted:
                assert alloc.holds(seq.request.req_id) == 0
            iters += 1
            assert iters < 2000
        assert sched.n_preemptions >= 1
        assert alloc.used_blocks == 0
        assert alloc.free_blocks == alloc.total_blocks

    def test_preemption_recompute_semantics(self):
        """The victim frees its blocks, folds generated tokens into
        prefill work, and still completes with the full output."""
        sched = _paged(max_tokens=64, token_budget=64, max_seqs=4)
        sched.submit(_req(0, prompt=24, output=30))
        sched.submit(_req(1, prompt=24, output=30))
        seen_preempted = None
        finished = []
        for it in range(500):
            if not sched.has_work:
                break
            plan = sched.schedule(float(it))
            finished.extend(sched.complete(plan, float(it)))
            if sched.preempted and seen_preempted is None:
                seen_preempted = sched.preempted[0]
                assert seen_preempted.prefilled == 0
                assert (seen_preempted.restart_tokens
                        == seen_preempted.generated > 0)
                assert (seen_preempted.prefill_remaining
                        == 24 + seen_preempted.restart_tokens)
                assert seen_preempted.context_tokens == 0
                assert sched.allocator.holds(
                    seen_preempted.request.req_id) == 0
        assert seen_preempted is not None
        assert seen_preempted.preemptions >= 1
        assert len(finished) == 2
        assert all(s.generated == 30 for s in finished)
        # Recompute preserves the first-token timestamp (TTFT does not
        # reset when a sequence is evicted after sampling began).
        assert all(s.first_token_s is not None for s in finished)

    def test_decode_preempts_youngest_first(self):
        """When the pool runs dry the most recently admitted sequence
        is evicted, not the oldest."""
        sched = _paged(max_tokens=64, token_budget=64, max_seqs=4)
        sched.submit(_req(0, prompt=16, output=40))
        sched.submit(_req(1, prompt=16, output=40))
        it = 0
        while not sched.preempted:
            plan = sched.schedule(float(it))
            sched.complete(plan, float(it))
            it += 1
            assert it < 200
        assert sched.preempted[0].request.req_id == 1
        assert [s.request.req_id for s in sched.running] == [0]

    def test_preempted_requeue_stays_fcfs_across_iterations(self):
        """Victims falling in different iterations (any age order)
        still re-admit oldest-first."""
        sched = _paged(max_tokens=400, token_budget=1024, max_seqs=8)
        for i in range(3):
            sched.submit(_req(i, prompt=16, output=16))
        sched.complete(sched.schedule(), 0.0)
        a, b, c = sched.running  # admission (FCFS) order
        sched._preempt(b, set())  # middle first, as if iteration 1
        sched._preempt(a, set())  # then the oldest, iteration 2
        sched._preempt(c, set())
        assert [s.request.req_id for s in sched.preempted] == [0, 1, 2]
        assert [s.admission_no for s in sched.preempted] == [1, 2, 3]

    def test_victim_is_youngest_by_admission_not_tail_position(self):
        """A re-admitted older sequence sits at the tail of ``running``
        but must not be re-evicted ahead of a truly younger one."""
        sched = _paged(max_tokens=400, token_budget=1024, max_seqs=8)
        for i in range(2):
            sched.submit(_req(i, prompt=16, output=16))
        sched.complete(sched.schedule(), 0.0)
        older, younger = sched.running
        sched._preempt(older, set())
        sched.running.append(sched.preempted.popleft())  # re-admitted
        assert [s.admission_no for s in sched.running] == [2, 1]
        assert sched._pick_victim(BatchPlan()) is younger

    def test_oversized_request_rejected(self):
        sched = _paged(max_tokens=40, block_tokens=8)
        assert not sched.fits(_req(0, prompt=48, output=16))
        with pytest.raises(ValueError):
            sched.submit(_req(0, prompt=48, output=16))
        # Block granularity: 41 tokens need 6 blocks but only 5 exist.
        assert sched.fits(_req(1, prompt=32, output=8))
        assert not sched.fits(_req(2, prompt=33, output=8))

    def test_simulator_run_drains_and_reports(self):
        budget = KVBudget(capacity_bytes=300.0, bytes_per_token=1.0)
        sched = ContinuousBatchScheduler(budget, token_budget=256,
                                         max_seqs=32, admission="paged",
                                         block_tokens=8)
        sim = ServingSimulator(sched, ConstantCostModel(), name="paged")
        trace = [_req(i, prompt=32, output=24) for i in range(12)]
        report = sim.run(trace)
        assert report.n_requests == 12
        assert report.admission == "paged"
        assert report.n_preempted == sched.n_preemptions >= 1
        assert report.peak_kv_occupancy > 0
        assert "preempt" in report.summary()
        assert not sched.has_work and sched.allocator.used_blocks == 0

    def test_paged_outpacks_reserve_at_equal_memory(self):
        """The tentpole claim at stub-cost scale: equal pool, paged
        admission reaches strictly higher peak occupancy and no worse
        completion time."""
        budget = KVBudget(capacity_bytes=300.0, bytes_per_token=1.0)
        trace = [_req(i, prompt=32, output=24) for i in range(12)]
        reports = {}
        for adm in ("reserve", "paged"):
            sched = ContinuousBatchScheduler(budget, token_budget=256,
                                             max_seqs=32, admission=adm,
                                             block_tokens=8)
            reports[adm] = ServingSimulator(
                sched, ConstantCostModel(), name=adm).run(trace)
        assert (reports["paged"].peak_kv_occupancy
                > reports["reserve"].peak_kv_occupancy)
        assert (reports["paged"].makespan_s
                <= reports["reserve"].makespan_s)

    def test_kv_pressure_uses_observed_blocks(self):
        """Paged pressure counts blocks actually held plus queued
        prompts' blocks — not worst-case footprints."""
        sched = _paged(max_tokens=80, token_budget=4, max_seqs=1,
                       block_tokens=8)
        sched.submit(_req(0, prompt=8, output=64))   # 72 worst-case
        sched.submit(_req(1, prompt=8, output=64))   # queued
        sched.complete(sched.schedule(), 0.0)
        alloc = sched.allocator
        expected = (alloc.used_blocks
                    + alloc.blocks_for_tokens(8 + 1)) / alloc.total_blocks
        assert sched.kv_pressure == pytest.approx(expected)
        # Worst-case pressure would already be (72 + 72) / 80 = 1.8.
        assert sched.kv_pressure < 1.0

    def test_fragmentation_visible(self):
        sched = _paged(max_tokens=160, token_budget=64, max_seqs=8,
                       block_tokens=16)
        sched.submit(_req(0, prompt=17, output=8))  # 2 blocks, 15 slack
        sched.complete(sched.schedule(), 0.0)
        assert 0.0 < sched.kv_fragmentation < 1.0

    def test_validation(self):
        budget = KVBudget(capacity_bytes=100.0, bytes_per_token=1.0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(budget, admission="evict")
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(budget, admission="paged",
                                     block_tokens=0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(budget, admission="paged",
                                     watermark_frac=1.0)


# ----------------------------------------------------------------------
# Invariant fuzzing: randomized ensure/release/preempt interleavings
# ----------------------------------------------------------------------
class TestAllocatorFuzz:
    """Hypothesis-style randomized interleavings (seeded ``random``):
    whatever order ``ensure``/``release``/preemption happen in, the
    pool conserves blocks and never leaks an owner entry."""

    def _check(self, alloc, live_owners):
        assert alloc.used_blocks + alloc.free_blocks == alloc.total_blocks
        assert alloc.used_blocks == sum(alloc.holds(o) for o in live_owners)
        assert set(alloc._held) <= live_owners
        assert set(alloc._used_tokens) <= live_owners
        for owner in live_owners:
            assert alloc.holds(owner) >= 0

    def test_ensure_release_interleavings_conserve_blocks(self):
        rng = random.Random(0xC0FFEE)
        for trial in range(25):
            total = rng.randint(4, 64)
            bt = rng.choice([1, 2, 4, 8, 16])
            alloc = PagedKVAllocator(total_blocks=total, block_tokens=bt)
            tokens = {}
            for _ in range(200):
                op = rng.random()
                if op < 0.55 or not tokens:
                    owner = rng.randint(0, 7)
                    want = tokens.get(owner, 0) + rng.randint(1, 3 * bt)
                    before = (alloc.holds(owner), alloc.free_blocks)
                    if alloc.ensure(owner, want):
                        tokens[owner] = max(tokens.get(owner, 0), want)
                    else:
                        # A failed ensure must change nothing.
                        assert (alloc.holds(owner),
                                alloc.free_blocks) == before
                else:
                    owner = rng.choice(sorted(tokens))
                    freed = alloc.release(owner)
                    assert freed == -(-tokens.pop(owner) // bt)
                self._check(alloc, set(tokens))
            for owner in sorted(tokens):
                alloc.release(owner)
            assert alloc.used_blocks == 0
            assert alloc.free_blocks == alloc.total_blocks
            assert not alloc._held and not alloc._used_tokens

    def test_scheduler_lifecycle_fuzz_with_preemptions(self):
        """Random traces through the paged scheduler — including forced
        out-of-band preemptions — conserve blocks at every iteration
        and drain to an empty pool."""
        rng = random.Random(1234)
        for trial in range(10):
            bt = rng.choice([4, 8, 16])
            sched = _paged(max_tokens=rng.randint(10, 30) * bt,
                           token_budget=rng.randint(16, 128),
                           max_seqs=rng.randint(2, 8), block_tokens=bt)
            alloc = sched.allocator
            n_reqs = rng.randint(4, 12)
            cap = alloc.total_blocks * bt
            for i in range(n_reqs):
                prompt = rng.randint(1, max(1, cap // 2 - 2))
                output = rng.randint(1, max(1, cap - prompt - bt))
                if sched.fits(_req(i, prompt=prompt, output=output)):
                    sched.submit(_req(i, prompt=prompt, output=output))
            it = 0
            while sched.has_work:
                plan = sched.schedule(float(it))
                assert not plan.empty
                sched.complete(plan, float(it))
                if sched.running and rng.random() < 0.15:
                    sched._preempt(rng.choice(sched.running), set())
                assert (alloc.used_blocks + alloc.free_blocks
                        == alloc.total_blocks)
                assert alloc.used_blocks == sum(
                    alloc.holds(s.request.req_id) for s in sched.running)
                for seq in sched.preempted:
                    assert alloc.holds(seq.request.req_id) == 0
                it += 1
                assert it < 5000, "fuzz trace failed to drain"
            assert alloc.used_blocks == 0
            assert not alloc._held and not alloc._used_tokens


# ----------------------------------------------------------------------
# Reserve-mode equivalence against the legacy (PR-1) scheduler
# ----------------------------------------------------------------------
class LegacyReserveScheduler:
    """Verbatim copy of the PR-1 scheduler loop (worst-case
    reservations, head-first decode order), as the equivalence oracle.
    """

    def __init__(self, budget, token_budget=2048, max_seqs=64):
        self.budget = budget
        self.token_budget = token_budget
        self.max_seqs = max_seqs
        self.waiting = deque()
        self.running = []
        self.reserved_tokens = 0
        self.peak_seqs = 0
        self.peak_reserved_tokens = 0

    def fits(self, request):
        return request.total_tokens <= self.budget.max_tokens

    def submit(self, request):
        self.waiting.append(request)

    @property
    def has_work(self):
        return bool(self.waiting or self.running)

    @property
    def kv_utilization(self):
        return self.reserved_tokens / max(1, self.budget.max_tokens)

    def schedule(self, now_s=0.0):
        while self.waiting and len(self.running) < self.max_seqs:
            nxt = self.waiting[0]
            if (self.reserved_tokens + nxt.total_tokens
                    > self.budget.max_tokens):
                break
            self.waiting.popleft()
            self.running.append(SequenceState(request=nxt, admitted_s=now_s))
            self.reserved_tokens += nxt.total_tokens
        self.peak_seqs = max(self.peak_seqs, len(self.running))
        plan = BatchPlan()
        budget = self.token_budget
        for seq in self.running:
            if seq.in_decode and budget > 0:
                plan.decode.append(seq)
                budget -= 1
        for seq in self.running:
            if budget <= 0:
                break
            if seq.prefill_remaining > 0:
                chunk = min(seq.prefill_remaining, budget)
                plan.prefill.append((seq, chunk))
                budget -= chunk
        return plan

    def complete(self, plan, now_s):
        finished = []
        for seq, chunk in plan.prefill:
            seq.prefilled += chunk
            if seq.prefill_remaining == 0:
                seq.generated += 1
                seq.first_token_s = now_s
        for seq in plan.decode:
            seq.generated += 1
            if seq.first_token_s is None:
                seq.first_token_s = now_s
        for seq in list(self.running):
            if seq.finished:
                seq.finished_s = now_s
                self.running.remove(seq)
                self.reserved_tokens -= seq.reserved_tokens
                finished.append(seq)
        return finished


class TestReserveEquivalence:
    """``admission="reserve"`` must exactly reproduce the legacy
    scheduler's ``ServingReport`` on the PR-1 seed scenario."""

    def _pr1_trace(self):
        from repro.bench.serving import make_trace
        return make_trace("poisson", 16.0, 64, 384, 96, seed=0)

    @pytest.mark.parametrize("bytes_per_token", [524288.0, 131072.0],
                             ids=["fp16", "kv-cq-4"])
    def test_reports_match_legacy(self, bytes_per_token):
        trace = self._pr1_trace()
        reports = []
        for make in (
            lambda b: LegacyReserveScheduler(b, token_budget=2048,
                                             max_seqs=64),
            lambda b: ContinuousBatchScheduler(b, token_budget=2048,
                                               max_seqs=64,
                                               admission="reserve"),
        ):
            budget = KVBudget(capacity_bytes=4e9,
                              bytes_per_token=bytes_per_token)
            sched = make(budget)
            reports.append(ServingSimulator(
                sched, ConstantCostModel(), name="eq").run(trace))
        legacy, current = reports
        assert current.records == legacy.records
        assert current.makespan_s == legacy.makespan_s
        assert current.n_iterations == legacy.n_iterations
        assert current.peak_seqs == legacy.peak_seqs
        assert current.peak_kv_utilization == legacy.peak_kv_utilization
        assert current.n_preempted == 0

    def test_default_admission_is_reserve(self):
        budget = KVBudget(capacity_bytes=100.0, bytes_per_token=1.0)
        sched = ContinuousBatchScheduler(budget)
        assert sched.admission == "reserve"
        assert sched.allocator is None
