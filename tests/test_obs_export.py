"""Exporter tests: Perfetto trace_event JSON and the report CLI.

The exporters sit downstream of the tracer: these tests run small
traced simulations, validate the emitted Chrome/Perfetto JSON shape
(round-trips through ``json``, every event carries the required keys),
and reconcile the ``repro.obs.report`` time breakdown against the
simulator's own aggregates — TTFT/TPOT computed from span durations
must match :class:`~repro.serve.simulator.ServingReport` percentiles
within float tolerance.
"""

import json

import pytest

from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b
from repro.obs import EVT_PREEMPTED, to_perfetto, write_perfetto
from repro.obs.report import build_report, load_trace, percentile
from repro.serve.api import SchedulerConfig, SimConfig
from repro.serve.requests import Request
from repro.serve.scheduler import KVBudget


class _ConstantCostModel:
    def step_us(self, plan):
        return 150.0


@pytest.fixture(scope="module")
def engine():
    return ComputeEngine(RTX4090)


@pytest.fixture(scope="module")
def traced_report(engine):
    from repro.bench.serving import simulate_mode

    return simulate_mode("fp16", config=llama_7b(), engine=engine,
                         kv_hbm_gb=4.0, rate_rps=16.0, n_requests=32,
                         prompt_mean=256, output_mean=48, seed=0,
                         trace=True)


def _preempting_report():
    """A paged run on a pool tight enough to force recompute."""
    requests = [Request(req_id=i, arrival_s=0.0, prompt_tokens=16,
                        output_tokens=24) for i in range(10)]
    sim = SimConfig(
        scheduler=SchedulerConfig(token_budget=64, max_seqs=16,
                                  admission="paged", block_tokens=16),
        name="tight", trace=True,
    ).build(KVBudget(capacity_bytes=200.0, bytes_per_token=1.0),
            _ConstantCostModel())
    return sim.run(requests)


# ----------------------------------------------------------------------
# Perfetto JSON shape
# ----------------------------------------------------------------------
def test_perfetto_document_shape_and_round_trip(traced_report):
    doc = to_perfetto(traced_report.tracer, name="shape")
    blob = json.dumps(doc)
    assert json.loads(blob) == doc  # JSON-serialisable, lossless
    assert doc["otherData"]["name"] == "shape"
    events = doc["traceEvents"]
    assert events, "traced run must emit events"
    phases = set()
    for ev in events:
        assert ev["ph"] in ("X", "i", "M")
        phases.add(ev["ph"])
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
            assert ev["ts"] >= 0
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
    assert phases >= {"X", "M"}


def test_perfetto_request_spans_complete(traced_report):
    doc = to_perfetto(traced_report.tracer)
    spans = [ev for ev in doc["traceEvents"]
             if ev["ph"] == "X" and ev.get("cat") == "request"]
    by_name = {}
    for ev in spans:
        by_name.setdefault(ev["name"], []).append(ev)
    # Every completed request contributes exactly one span per phase.
    n = traced_report.n_requests
    assert len(by_name["queued"]) == n
    assert len(by_name["prefill"]) == n
    assert len(by_name["decode"]) == n


def test_perfetto_engine_steps_match_tracer(traced_report):
    doc = to_perfetto(traced_report.tracer)
    steps = [ev for ev in doc["traceEvents"]
             if ev["ph"] == "X" and ev.get("cat") == "engine"]
    assert len(steps) == traced_report.tracer.n_steps
    assert all(ev["tid"] == 0 for ev in steps)


def test_perfetto_merges_tracers_with_distinct_pids(engine):
    from repro.bench.cluster import make_replicas
    from repro.bench.serving import make_trace

    from repro.cluster.fleet import FleetSimulator
    from repro.serve.api import FleetConfig

    trace = make_trace("poisson", 12.0, 16, 128, 32, seed=0)
    tracers = {}
    for label in ("a", "b"):
        replicas = make_replicas(2, "fp16", config=llama_7b(),
                                 engine=engine)
        rep = FleetSimulator(
            replicas, config=FleetConfig(policy="jsq",
                                         trace=True)).run(trace)
        tracers[label] = rep.tracer
    doc = to_perfetto(tracers, name="merged")
    pids = {ev["pid"] for ev in doc["traceEvents"]}
    # 2 runs x 2 replicas, separated by the per-tracer pid stride.
    assert len(pids) == 4
    names = {ev["args"]["name"] for ev in doc["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "process_name"}
    assert any("a" in n for n in names)
    assert any("b" in n for n in names)


def test_perfetto_preemption_instants(tmp_path):
    rep = _preempting_report()
    assert rep.n_preempted >= 1
    assert len(rep.tracer.events_of_kind(EVT_PREEMPTED)) == rep.n_preempted
    doc = to_perfetto(rep.tracer)
    instants = [ev for ev in doc["traceEvents"]
                if ev["ph"] == "i" and ev["name"] == "preempted"]
    assert len(instants) == rep.n_preempted


def test_write_perfetto_loads_back(tmp_path, traced_report):
    path = tmp_path / "trace.json"
    write_perfetto(path, traced_report.tracer, name="disk")
    doc = load_trace(path)
    assert doc["otherData"]["name"] == "disk"
    assert doc["traceEvents"]


# ----------------------------------------------------------------------
# Report CLI reconciliation
# ----------------------------------------------------------------------
def test_percentile_matches_linear_interpolation():
    values = [1.0, 2.0, 4.0, 8.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 8.0
    assert percentile(values, 50) == 3.0  # midpoint of 2 and 4


def test_report_reconciles_with_serving_aggregates(tmp_path, traced_report):
    path = tmp_path / "trace.json"
    write_perfetto(path, traced_report.tracer)
    report = build_report(load_trace(path))

    assert report["n_requests"] == traced_report.n_requests
    # TTFT from span durations == ServingReport percentile over
    # (first_token - arrival), modulo float rounding through µs.
    for q in (50, 95):
        assert percentile(report["ttft_ms"], q) == pytest.approx(
            traced_report.ttft_s(q) * 1e3, rel=1e-9, abs=1e-6)
        assert percentile(report["tpot_ms"], q) == pytest.approx(
            traced_report.tpot_s(q) * 1e3, rel=1e-9, abs=1e-6)
    # Phase totals cover every request's whole latency.
    total = sum(report["phase_totals_s"].values())
    latency_sum = sum(r.latency_s for r in traced_report.records)
    assert total == pytest.approx(latency_sum, rel=1e-9, abs=1e-6)


def test_report_counts_preemptions(tmp_path):
    rep = _preempting_report()
    path = tmp_path / "trace.json"
    write_perfetto(path, rep.tracer)
    report = build_report(load_trace(path))
    assert report["n_preempted"] == rep.n_preempted


def test_report_cli_renders_markdown(tmp_path, traced_report, capsys):
    from repro.obs.report import main

    path = tmp_path / "trace.json"
    write_perfetto(path, traced_report.tracer)
    out = tmp_path / "report.md"
    assert main([str(path), "--out", str(out)]) == 0
    text = out.read_text()
    assert "# Trace report" in text
    assert "Where request time goes" in text
    assert "TTFT ms" in text


def test_report_rejects_non_trace_json(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError):
        load_trace(path)


# ----------------------------------------------------------------------
# CLI integration: bench.serving / orchestrator
# ----------------------------------------------------------------------
def test_bench_serving_trace_out(tmp_path):
    from repro.bench.serving import run

    path = tmp_path / "bench.json"
    run(["--modes", "fp16", "--requests", "12", "--rate", "8",
         "--prompt-mean", "64", "--output-mean", "16",
         "--trace-out", str(path)])
    doc = load_trace(path)
    assert doc["traceEvents"]


def test_bench_serving_trace_alias_warns():
    from repro.bench.serving import run

    with pytest.warns(DeprecationWarning, match="deprecated alias"):
        run(["--modes", "fp16", "--requests", "8", "--rate", "8",
             "--prompt-mean", "64", "--output-mean", "16",
             "--trace", "bursty"])


def test_orchestrator_trial_trace_matches_untraced(tmp_path):
    from repro.bench.orchestrator import TrialSpec, run_trial

    spec = TrialSpec(kind="serving", mode="fp16", admission="reserve",
                     trace_kind="poisson", rate_rps=8.0, n_requests=12,
                     prompt_mean=64, output_mean=16, seed=0)
    path = tmp_path / "trial.perfetto.json"
    plain = run_trial(spec)
    traced = run_trial(spec, trace_path=path)
    assert traced.metrics == plain.metrics
    assert load_trace(path)["traceEvents"]
