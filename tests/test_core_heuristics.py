"""Adaptive-heuristics tests (Tbl. IV levels and knob selection)."""

import pytest

from repro.core.cache import CacheBoundaries
from repro.core.heuristics import (
    LEVELS,
    PlanKnobs,
    choose_knobs,
    knobs_for_all_levels,
    limit_register_entries,
)
from repro.core.hotness import profile_hotness
from repro.gpu.spec import RTX4090
from repro.vq.algorithms import make_config


@pytest.fixture(scope="module")
def gptvq_profile(qt_gptvq):
    return profile_hotness(qt_gptvq)


def _knobs(level, profile, algo="gptvq-2", books=1):
    return choose_knobs(level, RTX4090, make_config(algo), profile,
                        threads_per_block=256, regs_per_thread=52,
                        smem_per_block=8192, resident_books=books)


class TestLevels:
    def test_gc_is_global_placement(self, gptvq_profile):
        knobs = _knobs("GC", gptvq_profile)
        assert knobs.placement == "global"
        assert not knobs.dataflow
        assert not knobs.register_fusion

    def test_sc_is_shared_all(self, gptvq_profile):
        assert _knobs("SC", gptvq_profile).placement == "shared_all"

    def test_o1_has_no_register_level(self, gptvq_profile):
        knobs = _knobs("O1", gptvq_profile)
        assert knobs.placement == "hierarchical"
        assert knobs.boundaries.n_reg == 0

    def test_o2_adds_register_level_when_hot(self, qt_aqlm):
        profile = profile_hotness(qt_aqlm)
        knobs = choose_knobs("O2", RTX4090, make_config("aqlm-3"), profile,
                             256, 52, 8192)
        if profile.hot_entries() > 0:
            assert knobs.boundaries.n_reg > 0
        assert knobs.boundaries.n_reg <= profile.hot_entries()

    def test_o3_enables_dataflow(self, gptvq_profile):
        knobs = _knobs("O3", gptvq_profile)
        assert knobs.dataflow
        assert not knobs.dataflow_adaptive
        assert not knobs.register_fusion

    def test_o4_is_fully_adaptive(self, gptvq_profile):
        knobs = _knobs("O4", gptvq_profile)
        assert knobs.dataflow and knobs.dataflow_adaptive
        assert knobs.register_fusion

    def test_levels_are_cumulative_labels(self, gptvq_profile):
        all_knobs = knobs_for_all_levels(
            RTX4090, make_config("gptvq-2"), gptvq_profile, 256, 52, 8192)
        assert set(all_knobs) == set(LEVELS)
        for level, knobs in all_knobs.items():
            assert knobs.label == level

    def test_unknown_level_rejected(self, gptvq_profile):
        with pytest.raises(ValueError):
            _knobs("O9", gptvq_profile)

    def test_more_resident_books_shrink_shared_boundary(self,
                                                        gptvq_profile):
        one = _knobs("O1", gptvq_profile, books=1)
        many = _knobs("O1", gptvq_profile, books=16)
        assert many.boundaries.n_shared <= one.boundaries.n_shared

    def test_boundaries_override(self, gptvq_profile):
        override = CacheBoundaries(2, 128)
        knobs = choose_knobs("O4", RTX4090, make_config("gptvq-2"),
                             gptvq_profile, 256, 52, 8192,
                             boundaries_override=override)
        assert knobs.boundaries == override


class TestPlanKnobs:
    def test_hierarchical_requires_boundaries(self):
        with pytest.raises(ValueError):
            PlanKnobs(label="x", placement="hierarchical")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            PlanKnobs(label="x", placement="l2")

    def test_limit_register_entries(self):
        knobs = PlanKnobs(label="x", placement="hierarchical",
                          boundaries=CacheBoundaries(16, 128))
        clamped = limit_register_entries(knobs, 4)
        assert clamped.boundaries.n_reg == 4
        assert clamped.boundaries.n_shared == 128

    def test_limit_register_entries_noop_for_gc(self):
        knobs = PlanKnobs(label="GC", placement="global")
        assert limit_register_entries(knobs, 4) is knobs
