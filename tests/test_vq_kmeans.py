"""K-means tests."""

import numpy as np
import pytest

from repro.vq.kmeans import kmeans


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        data = np.concatenate([
            c + 0.1 * rng.standard_normal((100, 2)) for c in centers])
        result = kmeans(data, 3, seed=1)
        found = result.centroids[np.argsort(result.centroids[:, 0])]
        expected = centers[np.argsort(centers[:, 0])]
        assert np.allclose(found, expected, atol=0.5)

    def test_assignments_are_nearest(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((500, 4))
        result = kmeans(data, 16, seed=0)
        d = np.linalg.norm(data[:, None] - result.centroids[None], axis=2)
        assert np.array_equal(result.assignments, np.argmin(d, axis=1))

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((1000, 4))
        i4 = kmeans(data, 4, seed=0).inertia
        i64 = kmeans(data, 64, seed=0).inertia
        assert i64 < i4

    def test_k_geq_n_returns_points(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((10, 4))
        result = kmeans(data, 16, seed=0)
        assert result.centroids.shape == (16, 4)
        # Every point is its own centroid: zero inertia.
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((400, 4))
        a = kmeans(data, 8, seed=5)
        b = kmeans(data, 8, seed=5)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)

    def test_subsampled_training_still_assigns_all(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((5000, 4))
        result = kmeans(data, 16, seed=0, sample=1000)
        assert result.assignments.shape == (5000,)
        assert result.assignments.max() < 16

    def test_no_empty_clusters_on_degenerate_data(self):
        # Many duplicated points force empty-cluster repair.
        data = np.repeat(np.eye(4), 50, axis=0)
        result = kmeans(data, 8, seed=0)
        counts = np.bincount(result.assignments, minlength=8)
        # All points assigned; centroids finite.
        assert counts.sum() == 200
        assert np.all(np.isfinite(result.centroids))

    def test_rejects_empty_and_bad_k(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 4)), 4)
        with pytest.raises(ValueError):
            kmeans(np.ones((10, 4)), 0)
        with pytest.raises(ValueError):
            kmeans(np.ones(10), 2)

    def test_inertia_nonnegative(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((300, 8))
        assert kmeans(data, 32, seed=0).inertia >= 0.0
