"""Bit-packing tests, including AQLM's misaligned 12-bit format."""

import numpy as np
import pytest

from repro.vq.packing import (
    is_aligned,
    pack_indices,
    unpack_cost_ops,
    unpack_indices,
)


class TestPacking:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 12, 16])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        indices = rng.integers(0, 1 << bits, size=1000)
        packed = pack_indices(indices, bits)
        assert np.array_equal(unpack_indices(packed, bits, 1000), indices)

    def test_packed_size_8bit(self):
        packed = pack_indices(np.arange(16), 8)
        assert packed.size == 16

    def test_packed_size_12bit(self):
        packed = pack_indices(np.arange(16), 12)
        assert packed.size == 24  # 16 * 12 / 8

    def test_packed_size_sub_byte(self):
        packed = pack_indices(np.zeros(10, dtype=int), 2)
        assert packed.size == 3  # ceil(20 / 8)

    def test_empty(self):
        packed = pack_indices(np.array([], dtype=int), 12)
        assert packed.size == 0
        assert unpack_indices(packed, 12, 0).size == 0

    def test_value_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_indices(np.array([256]), 8)

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError):
            pack_indices(np.array([0]), 0)
        with pytest.raises(ValueError):
            pack_indices(np.array([0]), 17)
        with pytest.raises(ValueError):
            unpack_indices(np.zeros(4, dtype=np.uint8), 0, 1)

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError):
            unpack_indices(np.zeros(1, dtype=np.uint8), 12, 10)

    def test_multidimensional_input_flattens(self):
        indices = np.arange(24).reshape(4, 6)
        packed = pack_indices(indices, 8)
        assert np.array_equal(unpack_indices(packed, 8, 24),
                              indices.ravel())


class TestAlignment:
    def test_aligned_widths(self):
        assert all(is_aligned(b) for b in (1, 2, 4, 8, 16))

    def test_misaligned_widths(self):
        assert not any(is_aligned(b) for b in (3, 5, 6, 7, 12, 15))

    def test_unpack_cost_aligned_is_one(self):
        assert unpack_cost_ops(8) == 1
        assert unpack_cost_ops(16) == 1

    def test_unpack_cost_misaligned_is_higher(self):
        # AQLM's 12-bit format costs extra decode work.
        assert unpack_cost_ops(12) > unpack_cost_ops(8)

    def test_unpack_cost_rejects_bad_width(self):
        with pytest.raises(ValueError):
            unpack_cost_ops(0)
