"""Integration tests: fused kernels end-to-end (numerics + model)."""

import numpy as np
from repro.core.cache import CodebookCache
from repro.core.codegen import VQLLMCodeGenerator
from repro.core.fusion import exchange_to_compute_layout
from repro.core.slack import find_slack
from repro.gpu.spec import A40, RTX4090
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.attention import attention_decode
from repro.llm.config import tiny_llama
from repro.llm.kvcache import KVCache, QuantizedKVCache
from repro.llm.model import LlamaModel, structured_matrix
from repro.vq.algorithms import make_config, make_quantizer


class TestFusedNumerics:
    """Generated kernels compute exactly dequantize-then-compute."""

    def test_gemv_all_algorithms(self, weight, qt_gptvq, qt_quip):
        n, k_dim = weight.shape
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, k_dim))
        gen = VQLLMCodeGenerator(RTX4090)
        for qt in (qt_gptvq, qt_quip):
            kernel = gen.generate_gemv(GemmShape(4, n, k_dim), qt,
                                       level="O4", a=a)
            assert np.allclose(kernel.execute(),
                               a @ qt.dequantize().T)

    def test_gemm_numerics(self, weight, qt_gptvq):
        n, k_dim = weight.shape
        rng = np.random.default_rng(1)
        a = rng.standard_normal((96, k_dim))
        gen = VQLLMCodeGenerator(RTX4090)
        kernel = gen.generate_gemm(GemmShape(96, n, k_dim), qt_gptvq,
                                   level="O4", a=a)
        assert np.allclose(kernel.execute(), a @ qt_gptvq.dequantize().T)

    def test_register_fusion_path_matches_shared_path(self, qt_gptvq):
        """The xor-shuffle exchange reproduces the smem round-trip
        result on real dequantized data."""
        deq = qt_gptvq.dequantize()
        warp = deq[:32, :4]  # 32 lanes each holding one 4-vector
        via_registers = exchange_to_compute_layout(warp, 1)
        # Shared-memory path: write to a staging buffer, read back in
        # compute order (the mini-warp transpose).
        ratio = 4
        staged = warp.reshape(32, ratio, 1)
        via_shared = np.empty_like(staged)
        for base in range(0, 32, ratio):
            block = staged[base:base + ratio]
            via_shared[base:base + ratio] = block.transpose(1, 0, 2)
        assert np.allclose(via_registers,
                           via_shared.reshape(32, 4))

    def test_attention_through_quantized_cache(self):
        """Decode attention over a VQ KV cache approximates FP16."""
        rng = np.random.default_rng(2)
        tokens, heads, dim = 192, 2, 16
        cal_k = structured_matrix(rng, tokens, heads * dim).reshape(
            tokens, heads, dim)
        cal_v = structured_matrix(rng, tokens, heads * dim).reshape(
            tokens, heads, dim)
        qcache = QuantizedKVCache(make_config("cq-4"), 1, heads, dim, 16,
                                  cal_k, cal_v)
        fcache = KVCache(1, heads, dim, 16)
        for t in range(8):
            k, v = cal_k[t][None], cal_v[t][None]
            qcache.append(k, v)
            fcache.append(k, v)
        q = rng.standard_normal((1, heads, dim))
        quantized = attention_decode(q, qcache.keys, qcache.values)
        exact = attention_decode(q, fcache.keys, fcache.values)
        rel = np.linalg.norm(quantized - exact) / np.linalg.norm(exact)
        assert rel < 0.35

    def test_cache_access_reconstructs_tensor(self, qt_gptvq):
        """Looking every code up through the Load/Access/Switch API
        reproduces dequantize() on a sample of positions."""
        cache = CodebookCache(qt_gptvq)
        slack = find_slack(RTX4090, 256, 52, 8192)
        cache.load(slack)
        qt = cache.tensor
        deq = qt.dequantize()
        rng = np.random.default_rng(3)
        for _ in range(50):
            r = int(rng.integers(qt.rows))
            j = int(rng.integers(qt.n_subvectors))
            cache.switch(int(qt.group_map[r, j]))
            vec = cache.access(int(qt.codes[r, j, 0]))
            v = qt.config.vector_size
            assert np.allclose(deq[r, j * v:(j + 1) * v], vec, atol=1e-5)


class TestCrossGPU:
    def test_a40_slower_absolute_but_similar_ordering(self, qt_gptvq):
        shape = GemmShape(1, 8192, 8192)
        fast = VQLLMCodeGenerator(RTX4090)
        slow = VQLLMCodeGenerator(A40)
        for level in ("GC", "O4"):
            a = fast.generate_gemv(shape, qt_gptvq, level=level)
            b = slow.generate_gemv(shape, qt_gptvq, level=level)
            assert b.latency_us() >= a.latency_us()
        assert (slow.generate_gemv(shape, qt_gptvq, "O4").latency_us()
                < slow.generate_gemv(shape, qt_gptvq, "GC").latency_us())


class TestModelWithQuantizedWeights:
    def test_quantized_model_tracks_fp16(self):
        model = LlamaModel(tiny_llama(), seed=0)
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, model.config.vocab, size=(2, 16))
        base = model.forward(tokens)

        quantizer = make_quantizer("quip#-4", kmeans_iters=4,
                                   train_sample=4096)
        override = {}
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(model.layers[0], name)
            qt = quantizer.quantize(np.ascontiguousarray(w.T))
            override[(0, name)] = qt.dequantize().T
        quant = model.forward(tokens, weight_override=override)
        rel = np.linalg.norm(quant - base) / np.linalg.norm(base)
        assert rel < 0.25

    def test_attention_kernel_vs_model(self):
        """The generated attention kernel's numeric path agrees with
        the reference model attention."""
        rng = np.random.default_rng(5)
        b, h, t, c = 1, 2, 32, 16
        q = rng.standard_normal((b, h, c))
        k = rng.standard_normal((b, h, t, c))
        v = rng.standard_normal((b, h, t, c))
        quantizer = make_quantizer("cq-4", kmeans_iters=4)
        qt_k = quantizer.quantize(k.transpose(0, 2, 1, 3).reshape(t, h * c))
        qt_v = quantizer.quantize(v.transpose(0, 2, 1, 3).reshape(t, h * c))
        gen = VQLLMCodeGenerator(RTX4090)
        deq_k = qt_k.dequantize().reshape(t, h, c).transpose(1, 0, 2)[None]
        deq_v = qt_v.dequantize().reshape(t, h, c).transpose(1, 0, 2)[None]
        kernel = gen.generate_attention(
            AttentionShape(b, h, t, c), qt_k, qt_v, level="O4",
            q=q, k_cache=deq_k, v_cache=deq_v)
        out = kernel.execute()
        ref = attention_decode(q, deq_k, deq_v)
        assert np.allclose(out, ref)
