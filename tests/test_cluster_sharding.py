"""Tensor-parallel plan and sharded cost model tests."""

import pytest

from repro.cluster.costs import ShardedStepCostModel
from repro.cluster.interconnect import IDEAL_LINK, NVLINK3, PCIE4
from repro.cluster.sharding import TensorParallelPlan
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import llama_7b, tiny_llama
from repro.llm.model import decode_operator_shapes
from repro.serve.costs import StepCostModel
from repro.serve.scheduler import KVBudget, kv_codebook_bytes
from repro.vq.algorithms import make_config


@pytest.fixture(scope="module")
def engine():
    return ComputeEngine(RTX4090)


class TestPlanValidation:
    def test_degree_must_divide_model_dims(self):
        cfg = llama_7b()  # 32 heads, intermediate 11008, vocab 32000
        TensorParallelPlan(cfg, 8)  # divides everything
        with pytest.raises(ValueError):
            TensorParallelPlan(cfg, 3)
        with pytest.raises(ValueError):
            TensorParallelPlan(cfg, 0)

    def test_unknown_projection_rejected(self):
        plan = TensorParallelPlan(llama_7b(), 2)
        with pytest.raises(ValueError):
            plan.shard_gemm("mystery_proj", GemmShape(m=1, n=64, k=64))

    def test_tp1_passthrough(self):
        plan = TensorParallelPlan(llama_7b(), 1)
        g = GemmShape(m=4, n=4096, k=4096)
        a = AttentionShape(batch=4, heads=32, seq_len=512, head_dim=128)
        assert plan.shard_gemm("qkv_proj", g) == g
        assert plan.shard_attention(a) == a
        assert plan.decode_collective_us(16) == 0.0
        assert plan.prefill_collective_us(512) == 0.0


class TestFlopConservation:
    """Per-shard work times tp_degree equals the unsharded work."""

    @pytest.mark.parametrize("tp", [2, 4, 8])
    def test_decode_ledger_conserves_flops(self, tp):
        cfg = llama_7b()
        plan = TensorParallelPlan(cfg, tp)
        for op in decode_operator_shapes(cfg, batch=8, seq_len=512):
            if op.kind == "gemv":
                full = GemmShape(m=op.m, n=op.n, k=op.k)
                shard = plan.shard_gemm(op.name, full)
                assert shard.flops * tp == full.flops, op.name
            elif op.kind == "attention":
                full = AttentionShape(batch=op.batch, heads=op.heads,
                                      seq_len=op.seq_len,
                                      head_dim=op.head_dim)
                shard = plan.shard_attention(full)
                assert shard.flops * tp == full.flops

    @pytest.mark.parametrize("tp", [2, 4])
    def test_prefill_gemms_conserve_flops(self, tp):
        cfg = llama_7b()
        plan = TensorParallelPlan(cfg, tp)
        h, inter = cfg.hidden, cfg.intermediate
        for name, n, k in (("qkv_proj", 3 * h, h), ("o_proj", h, h),
                           ("gate_up_proj", 2 * inter, h),
                           ("down_proj", h, inter)):
            full = GemmShape(m=256, n=n, k=k)
            shard = plan.shard_gemm(name, full)
            assert shard.flops * tp == full.flops, name

    def test_row_and_column_parallel_split_different_dims(self):
        plan = TensorParallelPlan(llama_7b(), 4)
        g = GemmShape(m=2, n=4096, k=4096)
        col = plan.shard_gemm("qkv_proj", g)
        row = plan.shard_gemm("o_proj", g)
        assert col.n == g.n // 4 and col.k == g.k
        assert row.k == g.k // 4 and row.n == g.n


class TestCollectiveAccounting:
    def test_decode_collectives_monotone_in_degree(self):
        cfg = llama_7b()
        costs = [TensorParallelPlan(cfg, tp, NVLINK3).decode_collective_us(16)
                 for tp in (1, 2, 4, 8)]
        assert costs == sorted(costs)
        assert costs[0] == 0.0 and costs[-1] > 0.0

    def test_decode_collectives_monotone_in_batch(self):
        plan = TensorParallelPlan(llama_7b(), 4, NVLINK3)
        costs = [plan.decode_collective_us(b) for b in (1, 8, 64)]
        assert costs == sorted(costs) and costs[0] < costs[-1]

    def test_prefill_skips_the_lm_head_gather(self):
        """Per token, prefill communicates less than decode (no logits)."""
        plan = TensorParallelPlan(llama_7b(), 4, NVLINK3)
        assert (plan.prefill_collective_us(16)
                < plan.decode_collective_us(16))

    def test_sample_collective_prices_the_logits_gather(self):
        """The prompt-completing iteration's first tokens pay the same
        full-vocab all-gather a decode step's LM head does."""
        plan = TensorParallelPlan(llama_7b(), 4, NVLINK3)
        assert plan.sample_collective_us(4) > 0.0
        assert (plan.sample_collective_us(4)
                == pytest.approx(plan.allgather_us(
                    4 * llama_7b().vocab * 2)))
        assert TensorParallelPlan(
            llama_7b(), 1, NVLINK3).sample_collective_us(4) == 0.0


class TestKVBudgetSharding:
    def test_kv_bytes_shard_but_codebooks_replicate(self):
        cfg = llama_7b()
        vq = make_config("cq-4")
        single = KVBudget.for_model(cfg, 8e9, vq=vq)
        for tp in (2, 4):
            plan = TensorParallelPlan(cfg, tp)
            shard = plan.kv_budget(8e9, vq=vq)
            assert shard.bytes_per_token == pytest.approx(
                single.bytes_per_token / tp)
            # Replicated codebooks: the per-GPU overhead does not shrink.
            assert shard.overhead_bytes == kv_codebook_bytes(cfg, vq)
            assert shard.max_tokens > single.max_tokens

    def test_weight_bytes_shrink_with_degree(self):
        cfg = llama_7b()
        sizes = [TensorParallelPlan(cfg, tp).weight_bytes_per_gpu()
                 for tp in (1, 2, 4, 8)]
        assert sizes == sorted(sizes, reverse=True)
        # tp=1 matches the full FP16 footprint to within the replicated
        # embedding/norm bookkeeping.
        assert sizes[0] == pytest.approx(2.0 * cfg.param_count, rel=0.01)


class TestShardedStepCostModel:
    def test_tp1_equals_base_model_exactly(self, engine):
        cfg = llama_7b()
        base = StepCostModel(engine, cfg, seq_bucket=512)
        plan = TensorParallelPlan(cfg, 1, PCIE4)
        sharded = ShardedStepCostModel(engine, cfg, plan, seq_bucket=512)
        for batch, ctx in ((1, 128), (16, 1024), (64, 4096)):
            assert sharded.decode_step_us(batch, ctx) == pytest.approx(
                base.decode_step_us(batch, ctx), rel=1e-12)
        for tokens, ctx in ((256, 0), (512, 1024)):
            assert sharded.prefill_us(tokens, ctx) == pytest.approx(
                base.prefill_us(tokens, ctx), rel=1e-12)
        assert sharded.first_token_us(4) == pytest.approx(
            base.first_token_us(4), rel=1e-12)

    def test_first_token_includes_logits_gather_under_tp(self, engine):
        """Regression: under TP the first sampled token's LM-head
        all-gather must be priced, exactly as a decode step's is."""
        cfg = llama_7b()
        plan = TensorParallelPlan(cfg, 4, NVLINK3)
        sharded = ShardedStepCostModel(engine, cfg, plan, seq_bucket=512)
        shard_only = (sharded.first_token_us(4)
                      - plan.sample_collective_us(4))
        assert plan.sample_collective_us(4) > 0.0
        assert shard_only > 0.0

    def test_free_interconnect_makes_tp_strictly_faster(self, engine):
        """Over an ideal link, sharding can only shrink the step."""
        cfg = llama_7b()
        costs = []
        for tp in (1, 2, 4):
            plan = TensorParallelPlan(cfg, tp, IDEAL_LINK)
            model = ShardedStepCostModel(engine, cfg, plan, seq_bucket=512)
            costs.append(model.decode_step_us(16, 1024))
        assert costs[0] > costs[1] > costs[2]

    def test_pcie_collectives_erode_the_gain(self, engine):
        """The same sharding helps less over a slower interconnect."""
        cfg = llama_7b()

        def step(link):
            plan = TensorParallelPlan(cfg, 8, link)
            return ShardedStepCostModel(
                engine, cfg, plan, seq_bucket=512).decode_step_us(16, 1024)

        assert step(NVLINK3) < step(PCIE4)

    def test_config_mismatch_rejected(self, engine):
        plan = TensorParallelPlan(llama_7b(), 2)
        with pytest.raises(ValueError):
            ShardedStepCostModel(engine, tiny_llama(), plan)

    def test_zero_work_is_free(self, engine):
        plan = TensorParallelPlan(llama_7b(), 2, NVLINK3)
        model = ShardedStepCostModel(engine, llama_7b(), plan)
        assert model.decode_step_us(0, 128.0) == 0.0
        assert model.prefill_us(0) == 0.0
