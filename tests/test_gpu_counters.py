"""PerfCounters container tests."""

import pytest

from repro.gpu.counters import PerfCounters


class TestPerfCounters:
    def test_defaults_are_zero(self):
        c = PerfCounters()
        assert c.dram_bytes == 0.0
        assert c.kernel_launches == 1
        assert c.conflict_rate == 0.0

    def test_shared_traffic_sums_components(self):
        c = PerfCounters(global_to_shared_bytes=10.0,
                         shared_to_reg_bytes=20.0,
                         reg_to_shared_bytes=5.0)
        assert c.shared_traffic_bytes == 35.0

    def test_conflict_rate(self):
        c = PerfCounters(shared_transactions=100.0,
                         bank_conflict_transactions=25.0)
        assert c.conflict_rate == pytest.approx(0.25)

    def test_addition_sums_traffic(self):
        a = PerfCounters(dram_bytes=100.0, flops=10.0, kernel_launches=1)
        b = PerfCounters(dram_bytes=50.0, flops=5.0, kernel_launches=1)
        merged = a + b
        assert merged.dram_bytes == 150.0
        assert merged.flops == 15.0
        assert merged.kernel_launches == 2

    def test_addition_maxes_per_block_resources(self):
        a = PerfCounters(smem_per_block=1024, regs_per_thread=32,
                         threads_per_block=128)
        b = PerfCounters(smem_per_block=4096, regs_per_thread=16,
                         threads_per_block=256)
        merged = a + b
        assert merged.smem_per_block == 4096
        assert merged.regs_per_thread == 32
        assert merged.threads_per_block == 256

    def test_addition_merges_notes(self):
        a = PerfCounters(notes={"x": 1})
        b = PerfCounters(notes={"y": 2})
        assert (a + b).notes == {"x": 1, "y": 2}

    def test_addition_keeps_min_nonzero_occupancy(self):
        a = PerfCounters(occupancy=0.5)
        b = PerfCounters(occupancy=0.0)
        assert (a + b).occupancy == 0.5
        c = PerfCounters(occupancy=0.25)
        assert (a + c).occupancy == 0.25

    def test_add_non_counters_not_implemented(self):
        with pytest.raises(TypeError):
            PerfCounters() + 3

    def test_as_dict_excludes_notes(self):
        d = PerfCounters(notes={"k": "v"}).as_dict()
        assert "notes" not in d
        assert "dram_bytes" in d

    def test_relative_to(self):
        base = PerfCounters(dram_bytes=100.0, flops=10.0)
        mine = PerfCounters(dram_bytes=200.0, flops=10.0)
        ratios = mine.relative_to(base)
        assert ratios["dram_bytes"] == pytest.approx(2.0)
        assert ratios["flops"] == pytest.approx(1.0)

    def test_relative_to_zero_baseline(self):
        base = PerfCounters()
        mine = PerfCounters(shuffle_ops=5.0)
        ratios = mine.relative_to(base)
        assert ratios["shuffle_ops"] == float("inf")
        assert ratios["dram_bytes"] == 1.0  # both zero
