"""Harness, workload and E2E-ledger tests."""

import pytest

from repro.bench.accuracy import (
    correlated_2d_sample,
    mse_elementwise,
    mse_vq,
)
from repro.bench.e2e import MODES, E2ELedger
from repro.bench.harness import ExperimentResult, format_table
from repro.bench.workloads import (
    llama_attention_shape,
    llama_gemm_shape,
    llama_gemv_shape,
)
from repro.gpu.spec import A40, RTX4090
from repro.llm.config import llama_7b, llama_65b


class TestHarness:
    def test_add_row_validates_width(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1, 2, 3)

    def test_column_extraction(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add_row(1, "p")
        r.add_row(2, "q")
        assert r.column("a") == [1, 2]
        assert r.as_dicts()[1] == {"a": 2, "b": "q"}

    def test_render_contains_values(self):
        r = ExperimentResult("x", "Title", columns=("metric", "value"))
        r.add_row("speed", 12.5)
        text = r.render()
        assert "Title" in text and "12.50" in text

    def test_format_table_alignment(self):
        text = format_table("T", ("col",), [[123456.0]], notes=["hi"])
        assert "123,456" in text
        assert "note: hi" in text


class TestWorkloads:
    def test_llama7b_shapes(self):
        cfg = llama_7b()
        assert llama_gemm_shape(cfg, 1024).m == 1024
        assert llama_gemv_shape(cfg, 16).m == 16
        attn = llama_attention_shape(cfg, batch=8, seq_len=4096)
        assert attn.heads == 32 and attn.head_dim == 128

    def test_llama65b_is_bigger(self):
        small = llama_gemm_shape(llama_7b())
        big = llama_gemm_shape(llama_65b())
        assert big.n == 2 * small.n


class TestAccuracyProxy:
    def test_vq_beats_elementwise_on_correlated_data(self):
        data = correlated_2d_sample(n=2048, rho=0.9, seed=0)
        for bits in (2, 4):
            assert mse_vq(data, bits, seed=0) < mse_elementwise(data, bits)

    def test_more_bits_help_both(self):
        data = correlated_2d_sample(n=2048, seed=1)
        assert mse_vq(data, 4, seed=1) < mse_vq(data, 2, seed=1)
        assert mse_elementwise(data, 4) < mse_elementwise(data, 2)


class TestE2ELedger:
    @pytest.fixture(scope="class")
    def ledger(self):
        return E2ELedger(RTX4090, llama_7b())

    def test_decode_step_positive(self, ledger):
        step = ledger.decode_step(16, 1024, "fp16")
        assert step.total_us > 0
        assert 0 < step.elementwise_share < 0.5

    def test_quantized_modes_faster(self, ledger):
        fp16 = ledger.decode_step(16, 1024, "fp16").total_us
        for mode in ("qserve", "vq4", "vq2"):
            assert ledger.decode_step(16, 1024, mode).total_us < fp16

    def test_vq2_faster_than_vq4(self, ledger):
        vq4 = ledger.decode_step(16, 1024, "vq4").total_us
        vq2 = ledger.decode_step(16, 1024, "vq2").total_us
        assert vq2 < vq4

    def test_generation_integrates_decode(self, ledger):
        gen = ledger.generation_us(16, 1024, 64, "fp16", samples=3)
        step = ledger.decode_step(16, 1024, "fp16").total_us
        assert gen >= step * 64 * 0.9

    def test_zero_tokens(self, ledger):
        assert ledger.generation_us(16, 1024, 0, "fp16") == 0.0

    def test_speedups_structure(self, ledger):
        speedups = ledger.speedups(16, 256, 16)
        assert set(speedups) == set(MODES)
        assert speedups["fp16"] == pytest.approx(1.0)
        assert all(s > 1.0 for m, s in speedups.items() if m != "fp16")

    def test_a40_speedup_at_least_4090(self):
        ours = E2ELedger(RTX4090, llama_7b()).speedups(16, 256, 8)
        theirs = E2ELedger(A40, llama_7b()).speedups(16, 256, 8)
        # Paper: the bandwidth-constrained A40 gains more from VQ.
        assert theirs["vq4"] >= ours["vq4"] * 0.95

    def test_unknown_mode_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.decode_step(1, 128, "int3")


class TestServingBench:
    """Mode wiring of the serving experiment (the full simulation runs
    in examples/serving_simulation.py; here we only check the mapping)."""

    def test_kv_budgets_reflect_compression(self):
        from repro.bench.serving import make_kv_budget
        cfg = llama_7b()
        fp16 = make_kv_budget(cfg, "fp16", 4e9)
        cq4 = make_kv_budget(cfg, "kv-cq-4", 4e9)
        cq2 = make_kv_budget(cfg, "kv-cq-2", 4e9)
        assert cq4.bytes_per_token == pytest.approx(
            fp16.bytes_per_token * 0.25)
        assert cq2.bytes_per_token == pytest.approx(
            fp16.bytes_per_token * 0.125)
        assert cq2.max_tokens > cq4.max_tokens > fp16.max_tokens

    def test_full_stack_modes_map_to_e2e_algos(self):
        from repro.bench.serving import make_kv_budget
        cfg = llama_7b()
        vq4 = make_kv_budget(cfg, "vq4", 4e9)
        qserve = make_kv_budget(cfg, "qserve", 4e9)
        # CQ-4 codes and INT4 both store 25% of FP16; only the VQ mode
        # additionally pays resident codebooks.
        assert vq4.bytes_per_token == pytest.approx(qserve.bytes_per_token)
        assert vq4.overhead_bytes > 0 and qserve.overhead_bytes == 0

    def test_unknown_mode_rejected(self):
        from repro.bench.serving import make_cost_model
        from repro.core.engine import ComputeEngine
        with pytest.raises(ValueError):
            make_cost_model(ComputeEngine(RTX4090), llama_7b(), "int3")
