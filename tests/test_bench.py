"""Harness, workload and E2E-ledger tests."""

import pytest

from repro.bench.accuracy import (
    correlated_2d_sample,
    mse_elementwise,
    mse_vq,
)
from repro.bench.e2e import MODES, E2ELedger
from repro.bench.harness import ExperimentResult, format_table
from repro.bench.workloads import (
    llama_attention_shape,
    llama_gemm_shape,
    llama_gemv_shape,
)
from repro.gpu.spec import A40, RTX4090
from repro.llm.config import llama_7b, llama_65b


class TestHarness:
    def test_add_row_validates_width(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1, 2, 3)

    def test_column_extraction(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add_row(1, "p")
        r.add_row(2, "q")
        assert r.column("a") == [1, 2]
        assert r.as_dicts()[1] == {"a": 2, "b": "q"}

    def test_render_contains_values(self):
        r = ExperimentResult("x", "Title", columns=("metric", "value"))
        r.add_row("speed", 12.5)
        text = r.render()
        assert "Title" in text and "12.50" in text

    def test_format_table_alignment(self):
        text = format_table("T", ("col",), [[123456.0]], notes=["hi"])
        assert "123,456" in text
        assert "note: hi" in text


class TestWorkloads:
    def test_llama7b_shapes(self):
        cfg = llama_7b()
        assert llama_gemm_shape(cfg, 1024).m == 1024
        assert llama_gemv_shape(cfg, 16).m == 16
        attn = llama_attention_shape(cfg, batch=8, seq_len=4096)
        assert attn.heads == 32 and attn.head_dim == 128

    def test_llama65b_is_bigger(self):
        small = llama_gemm_shape(llama_7b())
        big = llama_gemm_shape(llama_65b())
        assert big.n == 2 * small.n


class TestSampleDiskCache:
    """The persistent quantized-sample store round-trips losslessly."""

    @pytest.fixture()
    def tiny_samples(self, tmp_path, monkeypatch):
        from repro.bench import workloads as wl
        monkeypatch.setenv("REPRO_SAMPLE_CACHE", str(tmp_path))
        monkeypatch.setattr(wl, "WEIGHT_SAMPLE_SHAPE", (64, 64))
        monkeypatch.setattr(wl, "_CACHE", {})
        yield wl, tmp_path

    def test_round_trip_bit_identical(self, tiny_samples):
        import numpy as np
        wl, cache_dir = tiny_samples
        first = wl.weight_sample("cq-2", kmeans_iters=1)
        files = list(cache_dir.glob("*.npz"))
        assert len(files) == 1
        wl.clear_cache()
        # The second call must be served from disk: training inputs
        # are unreachable.
        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("disk cache missed")
        wl.__dict__["structured_matrix"], orig = boom, wl.structured_matrix
        try:
            second = wl.weight_sample("cq-2", kmeans_iters=1)
        finally:
            wl.__dict__["structured_matrix"] = orig
        assert np.array_equal(first.codes, second.codes)
        assert np.array_equal(first.group_map, second.group_map)
        assert first.shape == second.shape
        for ga, gb in zip(first.codebooks.books, second.codebooks.books):
            for a, b in zip(ga, gb):
                assert np.array_equal(a.entries, b.entries)
                assert a.element_bytes == b.element_bytes

    def test_key_mismatch_retrains(self, tiny_samples):
        wl, cache_dir = tiny_samples
        wl.weight_sample("cq-2", kmeans_iters=1)
        wl.clear_cache()
        # Different k-means depth -> different file, not a false hit.
        wl.weight_sample("cq-2", kmeans_iters=2)
        assert len(list(cache_dir.glob("*.npz"))) == 2

    def test_opt_out(self, tiny_samples, monkeypatch):
        wl, cache_dir = tiny_samples
        monkeypatch.setenv("REPRO_SAMPLE_CACHE", "off")
        assert wl._sample_cache_dir() is None
        wl.weight_sample("cq-2", kmeans_iters=1)
        assert not list(cache_dir.glob("*.npz"))


class TestAccuracyProxy:
    def test_vq_beats_elementwise_on_correlated_data(self):
        data = correlated_2d_sample(n=2048, rho=0.9, seed=0)
        for bits in (2, 4):
            assert mse_vq(data, bits, seed=0) < mse_elementwise(data, bits)

    def test_more_bits_help_both(self):
        data = correlated_2d_sample(n=2048, seed=1)
        assert mse_vq(data, 4, seed=1) < mse_vq(data, 2, seed=1)
        assert mse_elementwise(data, 4) < mse_elementwise(data, 2)


class TestE2ELedger:
    @pytest.fixture(scope="class")
    def ledger(self):
        return E2ELedger(RTX4090, llama_7b())

    def test_decode_step_positive(self, ledger):
        step = ledger.decode_step(16, 1024, "fp16")
        assert step.total_us > 0
        assert 0 < step.elementwise_share < 0.5

    def test_quantized_modes_faster(self, ledger):
        fp16 = ledger.decode_step(16, 1024, "fp16").total_us
        for mode in ("qserve", "vq4", "vq2"):
            assert ledger.decode_step(16, 1024, mode).total_us < fp16

    def test_vq2_faster_than_vq4(self, ledger):
        vq4 = ledger.decode_step(16, 1024, "vq4").total_us
        vq2 = ledger.decode_step(16, 1024, "vq2").total_us
        assert vq2 < vq4

    def test_generation_integrates_decode(self, ledger):
        gen = ledger.generation_us(16, 1024, 64, "fp16", samples=3)
        step = ledger.decode_step(16, 1024, "fp16").total_us
        assert gen >= step * 64 * 0.9

    def test_zero_tokens(self, ledger):
        assert ledger.generation_us(16, 1024, 0, "fp16") == 0.0

    def test_speedups_structure(self, ledger):
        speedups = ledger.speedups(16, 256, 16)
        assert set(speedups) == set(MODES)
        assert speedups["fp16"] == pytest.approx(1.0)
        assert all(s > 1.0 for m, s in speedups.items() if m != "fp16")

    def test_a40_speedup_at_least_4090(self):
        ours = E2ELedger(RTX4090, llama_7b()).speedups(16, 256, 8)
        theirs = E2ELedger(A40, llama_7b()).speedups(16, 256, 8)
        # Paper: the bandwidth-constrained A40 gains more from VQ.
        assert theirs["vq4"] >= ours["vq4"] * 0.95

    def test_unknown_mode_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.decode_step(1, 128, "int3")

    def test_run_returns_result_and_reports(self):
        from repro.bench.e2e import DecodeStepBreakdown, run

        reports = {}
        result = run(["--modes", "fp16", "qserve", "--batch", "4",
                      "--prompt-len", "128", "--gen-tokens", "8"],
                     reports=reports)
        assert [r[0] for r in result.rows] == ["fp16", "qserve"]
        assert set(reports) == {"fp16", "qserve"}
        assert all(isinstance(b, DecodeStepBreakdown)
                   for b in reports.values())
        by_mode = {r[0]: dict(zip(result.columns, r))
                   for r in result.rows}
        assert by_mode["fp16"]["speedup_vs_fp16"] == pytest.approx(1.0)
        assert by_mode["qserve"]["speedup_vs_fp16"] > 1.0


class TestServingBench:
    """Mode wiring of the serving experiment (the full simulation runs
    in examples/serving_simulation.py; here we only check the mapping)."""

    def test_kv_budgets_reflect_compression(self):
        from repro.bench.serving import make_kv_budget
        cfg = llama_7b()
        fp16 = make_kv_budget(cfg, "fp16", 4e9)
        cq4 = make_kv_budget(cfg, "kv-cq-4", 4e9)
        cq2 = make_kv_budget(cfg, "kv-cq-2", 4e9)
        assert cq4.bytes_per_token == pytest.approx(
            fp16.bytes_per_token * 0.25)
        assert cq2.bytes_per_token == pytest.approx(
            fp16.bytes_per_token * 0.125)
        assert cq2.max_tokens > cq4.max_tokens > fp16.max_tokens

    def test_full_stack_modes_map_to_e2e_algos(self):
        from repro.bench.serving import make_kv_budget
        cfg = llama_7b()
        vq4 = make_kv_budget(cfg, "vq4", 4e9)
        qserve = make_kv_budget(cfg, "qserve", 4e9)
        # CQ-4 codes and INT4 both store 25% of FP16; only the VQ mode
        # additionally pays resident codebooks.
        assert vq4.bytes_per_token == pytest.approx(qserve.bytes_per_token)
        assert vq4.overhead_bytes > 0 and qserve.overhead_bytes == 0

    def test_unknown_mode_rejected(self):
        from repro.bench.serving import make_cost_model
        from repro.core.engine import ComputeEngine
        with pytest.raises(ValueError):
            make_cost_model(ComputeEngine(RTX4090), llama_7b(), "int3")

    def test_spec_derived_budget(self):
        from repro.bench.serving import make_kv_budget
        cfg = llama_7b()
        derived = make_kv_budget(cfg, "fp16", spec=RTX4090)
        explicit = make_kv_budget(cfg, "fp16", 4e9)
        assert derived.bytes_per_token == explicit.bytes_per_token
        assert derived.capacity_bytes > explicit.capacity_bytes  # ~8 GB
        with pytest.raises(ValueError):  # neither capacity nor spec
            make_kv_budget(cfg, "fp16")

    def test_make_trace_kinds(self):
        from repro.bench.serving import make_trace
        for kind in ("poisson", "bursty"):
            trace = make_trace(kind, 8.0, 40, 256, 64, seed=1)
            assert len(trace) == 40
        assert make_trace("poisson", 8.0, 40, 256, 64, seed=1) == \
            make_trace("poisson", 8.0, 40, 256, 64, seed=1)
        with pytest.raises(ValueError):
            make_trace("weibull", 8.0, 40, 256, 64)

    def test_make_trace_session_kinds_carry_ids(self):
        from repro.bench.serving import make_trace
        shared = make_trace("shared_prefix", 8.0, 12, 64, 16, seed=1)
        assert len(shared) == 12
        root = shared[0].prompt_ids[:128]  # system = 2 * prompt_mean
        assert all(r.prompt_ids[:128] == root for r in shared)
        chat = make_trace("chat", 8.0, 12, 64, 16, seed=1)
        assert len(chat) == 12  # 3 sessions x 4 turns
        assert {r.turn for r in chat} == {0, 1, 2, 3}
        assert all(r.prompt_ids is not None and r.output_ids is not None
                   for r in chat)
        # Counts not divisible by the turn count are hit exactly, and
        # trimming keeps every session's kept turns a prefix.
        chat10 = make_trace("chat", 8.0, 10, 64, 16, seed=1)
        assert len(chat10) == 10
        assert [r.req_id for r in chat10] == list(range(10))
        by_session = {}
        for r in chat10:
            by_session.setdefault(r.session_id, []).append(r.turn)
        assert all(sorted(turns) == list(range(len(turns)))
                   for turns in by_session.values())

    def test_cli_runs_a_small_comparison(self, capsys):
        from repro.bench.serving import main
        rc = main(["--modes", "fp16", "--requests", "6", "--rate", "8",
                   "--kv-gb", "2", "--prompt-mean", "64",
                   "--output-mean", "16", "--trace", "bursty"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace: bursty" in out
        assert "fp16" in out

    def test_cli_rejects_unknown_mode(self):
        from repro.bench.serving import main
        with pytest.raises(SystemExit):
            main(["--modes", "int3"])

    def test_cli_prefix_comparison(self, capsys):
        from repro.bench.serving import main
        rc = main(["--modes", "kv-cq-4", "--requests", "8", "--rate", "8",
                   "--kv-gb", "1", "--prompt-mean", "48",
                   "--output-mean", "8", "--trace-kind", "chat",
                   "--prefix-caching"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Prefix caching" in out
        assert "hit_rate" in out

    def test_cli_prefix_caching_defaults_to_chat_trace(self, capsys):
        """--prefix-caching without --trace-kind must not silently run
        an id-less poisson trace (where nothing can ever hit)."""
        from repro.bench.serving import main
        rc = main(["--modes", "kv-cq-4", "--requests", "8", "--rate", "8",
                   "--kv-gb", "1", "--prompt-mean", "48",
                   "--output-mean", "8", "--prefix-caching"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace: chat" in out
        assert "serves 0% of prompt tokens" not in out


class TestClusterBench:
    """Wiring of the fleet experiments (full runs live in
    examples/cluster_serving.py; these stay on tiny shapes)."""

    def test_replica_kv_budget_equal_hbm(self):
        from repro.bench.cluster import replica_kv_budget
        cfg = llama_7b()
        fp16 = replica_kv_budget(cfg, "fp16", RTX4090)
        cq4 = replica_kv_budget(cfg, "kv-cq-4", RTX4090)
        assert fp16.capacity_bytes == pytest.approx(cq4.capacity_bytes)
        assert cq4.max_tokens > 3.5 * fp16.max_tokens

    def test_tp_replicas_gain_kv_headroom(self):
        """Sharding frees weight memory and splits KV bytes, so a TP-2
        replica holds more than 2x the tokens of one GPU."""
        from repro.bench.cluster import replica_kv_budget
        cfg = llama_7b()
        single = replica_kv_budget(cfg, "fp16", RTX4090)
        tp2 = replica_kv_budget(cfg, "fp16", RTX4090, tp_degree=2)
        assert tp2.max_tokens > 2 * single.max_tokens

    def test_make_replicas_are_fresh_and_identical(self):
        from repro.bench.cluster import make_replicas
        from repro.core.engine import ComputeEngine
        from repro.llm.config import tiny_llama
        cfg = tiny_llama()
        engine = ComputeEngine(RTX4090)
        reps = make_replicas(3, "fp16", spec=RTX4090.with_dram(1.0),
                             config=cfg, engine=engine)
        assert len(reps) == 3
        assert len({id(r.scheduler) for r in reps}) == 3  # own schedulers
        assert len({id(r.cost_model) for r in reps}) == 1  # shared pricing
        assert all(r.scheduler.budget.max_tokens ==
                   reps[0].scheduler.budget.max_tokens for r in reps)

    def test_tp_scaling_table_structure(self):
        from repro.bench.cluster import tp_scaling
        from repro.cluster.interconnect import IDEAL_LINK
        from repro.core.engine import ComputeEngine
        from repro.llm.config import tiny_llama
        result = tp_scaling(spec=RTX4090, config=tiny_llama(),
                            degrees=(1, 2, 4), links=(IDEAL_LINK,),
                            batch=4, context_tokens=256,
                            engine=ComputeEngine(RTX4090))
        assert result.column("tp") == [1, 2, 4]
        speedups = result.column("speedup_vs_tp1")
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > speedups[0]

    def test_routing_comparison_structure(self):
        """Tiny-shape routing table: prefix-affinity must report the
        highest cached-token fraction on a sessionized trace."""
        from repro.bench.cluster import routing_comparison
        from repro.core.engine import ComputeEngine
        from repro.llm.config import tiny_llama
        reports = {}
        result = routing_comparison(
            mode="fp16", n_replicas=2,
            policies=("round-robin", "prefix-affinity"),
            spec=RTX4090.with_dram(2.0), config=tiny_llama(),
            rate_rps=8.0, n_requests=8, prompt_mean=32, output_mean=8,
            engine=ComputeEngine(RTX4090.with_dram(2.0)), reports=reports)
        assert result.column("policy") == ["round-robin",
                                           "prefix-affinity"]
        assert set(reports) == {"round-robin", "prefix-affinity"}
        cached = dict(zip(result.column("policy"),
                          result.column("cached_frac")))
        assert cached["prefix-affinity"] >= cached["round-robin"]

    def test_cluster_cli_runs_routing(self, capsys):
        from repro.bench.cluster import main
        rc = main(["--experiment", "routing", "--modes", "kv-cq-4",
                   "--trace", "chat", "--rate", "8", "--requests", "8",
                   "--prompt-mean", "48", "--output-mean", "8",
                   "--replicas", "2",
                   "--policy", "round-robin", "prefix-affinity"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Routing x prefix caching" in out
        assert "prefix-affinity" in out

    def test_cluster_cli_rejects_unknown_policy(self):
        from repro.bench.cluster import main
        with pytest.raises(SystemExit):
            main(["--experiment", "routing", "--policy", "random"])

    def test_cluster_cli_routing_defaults_to_chat_trace(self, capsys):
        """--experiment routing without --trace must default to an
        id-carrying trace, not poisson's all-zero hit table."""
        from repro.bench.cluster import main
        rc = main(["--experiment", "routing", "--modes", "kv-cq-4",
                   "--rate", "8", "--requests", "8",
                   "--prompt-mean", "48", "--output-mean", "8",
                   "--replicas", "2",
                   "--policy", "round-robin", "prefix-affinity"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "caches 0% of prompt tokens" not in out

    def test_cluster_cli_prefix_caching_forces_paged(self, capsys):
        """--prefix-caching under the sizing experiment must imply
        paged admission instead of crashing on the reserve default."""
        from repro.bench.cluster import main
        rc = main(["--experiment", "sizing", "--modes", "kv-cq-4",
                   "--rate", "8", "--requests", "8",
                   "--prompt-mean", "48", "--output-mean", "8",
                   "--max-replicas", "2", "--prefix-caching"])
        assert rc == 0
        assert "Fleet sizing" in capsys.readouterr().out


class TestStructuredResults:
    """The CLI experiment paths return structured results (prints
    preserved), so the orchestrator and tests never scrape stdout."""

    SERVING_ARGS = ["--modes", "fp16", "--requests", "6", "--rate", "8",
                    "--kv-gb", "2", "--prompt-mean", "64",
                    "--output-mean", "16"]

    def test_serving_run_returns_experiment_result(self, capsys):
        from repro.bench.harness import ExperimentResult
        from repro.bench.serving import run

        reports = {}
        table = run(self.SERVING_ARGS, reports=reports)
        assert isinstance(table, ExperimentResult)
        assert table.column("mode") == ["fp16"]
        assert set(reports) == {"fp16"}
        # The printed table is the same structured result, rendered.
        assert table.render() in capsys.readouterr().out
        assert reports["fp16"].throughput_rps \
            == table.column("req/s")[0]

    def test_serving_main_still_prints_and_returns_zero(self, capsys):
        from repro.bench.serving import main

        assert main(self.SERVING_ARGS) == 0
        assert "fp16" in capsys.readouterr().out

    def test_cluster_run_returns_experiment_result(self, capsys):
        from repro.bench.cluster import run
        from repro.bench.harness import ExperimentResult
        from repro.cluster.fleet import FleetReport

        reports = {}
        table = run(["--experiment", "routing", "--modes", "fp16",
                     "--trace", "chat", "--rate", "8", "--requests", "8",
                     "--prompt-mean", "48", "--output-mean", "8",
                     "--replicas", "2", "--policy", "round-robin"],
                    reports=reports)
        assert isinstance(table, ExperimentResult)
        assert set(reports) == {"round-robin"}
        assert isinstance(reports["round-robin"], FleetReport)
        assert table.render() in capsys.readouterr().out

    def test_serving_report_metrics_round_trip_json(self):
        import json

        from repro.bench.serving import simulate_mode

        rep = simulate_mode("fp16", rate_rps=8.0, n_requests=6,
                            prompt_mean=64, output_mean=16)
        metrics = rep.metrics()
        assert metrics["throughput_rps"] == rep.throughput_rps
        assert metrics["ttft_p50_ms"] == rep.ttft_s(50) * 1e3
        assert metrics["n_requests"] == rep.n_requests
        assert json.loads(json.dumps(metrics)) == metrics

    def test_fleet_report_metrics_with_and_without_slo(self):
        from repro.bench.cluster import make_replicas
        from repro.bench.serving import make_trace
        from repro.cluster.fleet import SLO, FleetSimulator

        trace = make_trace("poisson", 8.0, 8, 64, 16, seed=0)
        rep = FleetSimulator(make_replicas(2, "fp16"),
                             policy="jsq").run(trace)
        metrics = rep.metrics()
        assert metrics["n_replicas"] == 2
        assert "goodput_rps" not in metrics
        slo = SLO(ttft_s=2.0)
        with_slo = rep.metrics(slo)
        assert with_slo["goodput_rps"] == rep.goodput_rps(slo)
        assert with_slo["slo_attainment"] == rep.slo_attainment(slo)
