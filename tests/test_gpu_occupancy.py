"""Occupancy calculator tests against hand-computed CUDA examples."""

import pytest

from repro.gpu.occupancy import (
    Occupancy,
    occupancy,
    occupancy_curve_regs,
    occupancy_curve_smem,
)
from repro.gpu.spec import A40, A100, RTX4090


class TestOccupancyBasics:
    def test_unconstrained_kernel_is_warp_limited(self):
        occ = occupancy(RTX4090, 256, 16, 0)
        # 48 warps / 8 warps per block = 6 blocks.
        assert occ.blocks_per_sm == 6
        assert occ.warps_per_sm == 48
        assert occ.occupancy == 1.0

    def test_register_limit(self):
        # 128 regs * 32 lanes = 4096 per warp; 65536/4096 = 16 warps.
        occ = occupancy(RTX4090, 256, 128, 0)
        assert occ.warps_per_sm == 16
        assert occ.limiter == "registers"

    def test_register_allocation_granularity(self):
        # 65 regs -> 2080/warp -> rounded to 2304; 65536/2304 = 28 warps
        # -> 3 blocks of 8 warps.
        occ = occupancy(RTX4090, 256, 65, 0)
        assert occ.blocks_per_sm == 3

    def test_shared_memory_limit(self):
        occ = occupancy(RTX4090, 128, 32, 40 * 1024)
        # 102400 // 40960 = 2 blocks.
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared"

    def test_oversized_smem_cannot_launch(self):
        occ = occupancy(RTX4090, 128, 32, RTX4090.smem_per_block_max + 1)
        assert occ.blocks_per_sm == 0
        assert not occ.active

    def test_block_limit(self):
        occ = occupancy(RTX4090, 32, 16, 0)
        # One warp per block: the 24-block cap binds before 48 warps.
        assert occ.blocks_per_sm == RTX4090.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_occupancy_fraction_matches_warps(self):
        occ = occupancy(RTX4090, 256, 64, 16384)
        assert occ.occupancy == pytest.approx(
            occ.warps_per_sm / RTX4090.max_warps_per_sm)

    def test_a100_has_more_warp_capacity(self):
        ours = occupancy(RTX4090, 256, 32, 0)
        theirs = occupancy(A100, 256, 32, 0)
        assert theirs.warps_per_sm > ours.warps_per_sm

    def test_a40_block_cap(self):
        occ = occupancy(A40, 64, 16, 0)
        assert occ.blocks_per_sm <= A40.max_blocks_per_sm


class TestOccupancyValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            occupancy(RTX4090, 0, 32, 0)

    def test_rejects_negative_smem(self):
        with pytest.raises(ValueError):
            occupancy(RTX4090, 128, 32, -1)

    def test_rejects_excess_regs_per_thread(self):
        with pytest.raises(ValueError):
            occupancy(RTX4090, 128, 300, 0)


class TestOccupancyCurves:
    def test_smem_curve_is_monotone_nonincreasing(self):
        curve = occupancy_curve_smem(RTX4090, 256, 32,
                                     [0, 8192, 16384, 32768, 65536])
        values = [v for _, v in curve]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_reg_curve_is_monotone_nonincreasing(self):
        curve = occupancy_curve_regs(RTX4090, 256, 8192,
                                     [16, 32, 64, 96, 128, 255])
        values = [v for _, v in curve]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_curve_has_plateaus(self):
        # Fig. 10's step structure: at least one adjacent pair equal.
        curve = occupancy_curve_regs(RTX4090, 256, 0,
                                     list(range(32, 129, 8)))
        values = [v for _, v in curve]
        assert any(a == b for a, b in zip(values, values[1:]))

    def test_result_is_frozen_dataclass(self):
        occ = occupancy(RTX4090, 128, 32, 0)
        assert isinstance(occ, Occupancy)
        with pytest.raises(AttributeError):
            occ.blocks_per_sm = 5
