"""Golden bit-identical tests guarding the fast-path refactor.

``tests/data/golden_fastpath.json`` was recorded with
``tools/record_goldens.py`` on the pre-refactor simulator (per-replica
lockstep ``advance_to`` loop, unmemoized cost model, object-at-a-time
scheduler).  These tests recompute the same scenarios through the
current code and require every reported metric to round-trip *equal* —
JSON serialises Python floats losslessly, so equality here is
bit-identity of the simulation output, not a tolerance check.

Covered scenarios (see the recorder for the pinned workloads):

- the PR-1 seed serving scenario (fp16 / kv-cq-4 x reserve / paged,
  real RTX 4090 cost model);
- the PR-5 prefix-caching chat scenario (paged blocks + radix tree);
- a 3-replica fleet under ``jsq`` and ``least-kv`` routing, including
  per-replica iteration and request counts (the event-heap rewrite must
  not change which replica runs which iteration);
- a fleet-sizing scenario (smallest SLO-compliant kv-cq-4 fleet).
"""

import importlib.util
import json
import os

import pytest

_HERE = os.path.dirname(__file__)
_GOLDEN_PATH = os.path.join(_HERE, "data", "golden_fastpath.json")
_RECORDER_PATH = os.path.join(_HERE, os.pardir, "tools",
                              "record_goldens.py")


def _load_recorder():
    spec = importlib.util.spec_from_file_location("record_goldens",
                                                  _RECORDER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def recomputed():
    recorder = _load_recorder()
    # Round-trip through JSON so float/int representations match the
    # stored golden exactly (what the orchestrator persists).
    return json.loads(json.dumps(recorder.record(), sort_keys=True))


def test_seed_scenario_bit_identical(golden, recomputed):
    assert recomputed["seed"] == golden["seed"]


def test_prefix_scenario_bit_identical(golden, recomputed):
    assert recomputed["prefix"] == golden["prefix"]


def test_fleet_scenario_bit_identical(golden, recomputed):
    assert recomputed["fleet"] == golden["fleet"]


def test_sizing_scenario_bit_identical(golden, recomputed):
    assert recomputed["sizing"] == golden["sizing"]
