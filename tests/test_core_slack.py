"""Resource-slack tests (Fig. 10 mechanics)."""

from repro.core.slack import MIN_OCCUPANCY, ResourceSlack, find_slack
from repro.gpu.occupancy import occupancy
from repro.gpu.spec import RTX4090


class TestFindSlack:
    def test_slack_respects_floor(self):
        slack = find_slack(RTX4090, 256, 52, 8192)
        # Consuming the smem slack must keep blocks at/above the floor.
        occ = occupancy(RTX4090, 256, 52, 8192 + slack.smem_bytes)
        assert occ.blocks_per_sm >= slack.floor_blocks_per_sm

    def test_one_more_byte_drops_blocks(self):
        slack = find_slack(RTX4090, 256, 52, 8192)
        if slack.smem_bytes > 0:
            beyond = occupancy(RTX4090, 256, 52,
                               8192 + slack.smem_bytes + 256)
            at = occupancy(RTX4090, 256, 52, 8192 + slack.smem_bytes)
            assert beyond.blocks_per_sm <= at.blocks_per_sm

    def test_register_slack_respects_floor(self):
        slack = find_slack(RTX4090, 256, 52, 8192)
        occ = occupancy(RTX4090, 256,
                        min(52 + slack.regs_per_thread, 255), 8192)
        assert occ.blocks_per_sm >= slack.floor_blocks_per_sm

    def test_unlaunchable_kernel_has_no_slack(self):
        slack = find_slack(RTX4090, 256, 52,
                           RTX4090.smem_per_block_max + 4096)
        assert slack == ResourceSlack(0, 0, 0, 0)

    def test_floor_honours_min_occupancy(self):
        slack = find_slack(RTX4090, 256, 52, 8192)
        warps_per_block = 8
        floor_occ = (slack.floor_blocks_per_sm * warps_per_block
                     / RTX4090.max_warps_per_sm)
        base_occ = (slack.baseline_blocks_per_sm * warps_per_block
                    / RTX4090.max_warps_per_sm)
        assert floor_occ >= min(MIN_OCCUPANCY, base_occ) - 1e-9

    def test_low_occupancy_baseline_keeps_one_block(self):
        # A kernel already below the floor keeps its single block.
        slack = find_slack(RTX4090, 256, 52, 90 * 1024)
        assert slack.floor_blocks_per_sm >= 1

    def test_memory_bound_shape_has_substantial_smem_slack(self):
        # The GEMV shape of the paper: small base smem leaves a lot of
        # slack for the codebook cache.
        slack = find_slack(RTX4090, 256, 52, 8192)
        assert slack.smem_bytes >= 16 * 1024

    def test_stricter_floor_means_less_slack(self):
        loose = find_slack(RTX4090, 256, 52, 8192, min_occupancy=0.2)
        tight = find_slack(RTX4090, 256, 52, 8192, min_occupancy=0.8)
        assert tight.smem_bytes <= loose.smem_bytes
