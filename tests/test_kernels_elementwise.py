"""Element-wise quantization kernel tests (AWQ / QoQ baselines)."""

import numpy as np
from repro.gpu.spec import RTX4090
from repro.kernels.attention import AttentionShape, FlashDecodingKernel
from repro.kernels.elementwise import (
    ElementwiseAttentionKernel,
    ElementwiseGemmKernel,
    ElementwiseGemvKernel,
)
from repro.kernels.gemm import FP16GemmKernel, FP16GemvKernel, GemmShape
from repro.llm.attention import attention_decode
from repro.vq.elementwise import quantize_elementwise

GEMV = GemmShape(m=16, n=4096, k=4096)
GEMM = GemmShape(m=1024, n=4096, k=4096)
ATTN = AttentionShape(batch=1, heads=32, seq_len=1024, head_dim=128)


class TestElementwiseGemv:
    def test_beats_fp16(self):
        awq = ElementwiseGemvKernel(GEMV, bits=4).latency_us(RTX4090)
        fp16 = FP16GemvKernel(GEMV).latency_us(RTX4090)
        assert awq < fp16

    def test_traffic_is_quarter_plus_scales(self):
        c = ElementwiseGemvKernel(GEMV, bits=4).counters(RTX4090)
        fp16 = FP16GemvKernel(GEMV).counters(RTX4090)
        assert c.dram_bytes < fp16.dram_bytes * 0.45

    def test_8bit_slower_than_4bit(self):
        four = ElementwiseGemvKernel(GEMV, bits=4).latency_us(RTX4090)
        eight = ElementwiseGemvKernel(GEMV, bits=8).latency_us(RTX4090)
        assert four < eight

    def test_numeric_execution(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 128))
        w = rng.standard_normal((128, 64))
        q = quantize_elementwise(w, bits=8, group_size=64)
        k = ElementwiseGemvKernel(GemmShape(2, 64, 128), bits=8,
                                  a=a, quantized=q)
        assert np.allclose(k.execute(), a @ q.dequantize(), atol=0.5)


class TestElementwiseGemm:
    def test_loses_to_cutlass_fp16(self):
        # Fig. 16: quantized GEMM underperforms cutlass FP16 at prefill.
        awq = ElementwiseGemmKernel(GEMM, bits=4).latency_us(RTX4090)
        fp16 = FP16GemmKernel(GEMM).latency_us(RTX4090)
        assert fp16 < awq

    def test_dequant_work_counted(self):
        c = ElementwiseGemmKernel(GEMM, bits=4).counters(RTX4090)
        assert c.dequant_ops > 0
        assert c.unpack_ops > 0


class TestElementwiseAttention:
    def test_beats_fp16(self):
        qoq = ElementwiseAttentionKernel(ATTN, bits=4).latency_us(RTX4090)
        fp16 = FlashDecodingKernel(ATTN).latency_us(RTX4090)
        assert qoq < fp16

    def test_scales_with_batch(self):
        small = ElementwiseAttentionKernel(ATTN, bits=4).latency_us(RTX4090)
        big_shape = AttentionShape(8, 32, 1024, 128)
        big = ElementwiseAttentionKernel(big_shape,
                                         bits=4).latency_us(RTX4090)
        assert big > 2 * small

    def test_numeric_execution(self):
        rng = np.random.default_rng(1)
        b, h, t, c = 1, 2, 16, 64
        q = rng.standard_normal((b, h, c))
        k = rng.standard_normal((b, h, t, c))
        v = rng.standard_normal((b, h, t, c))
        kq = quantize_elementwise(k.reshape(b * h * t, c), 8, 64)
        vq = quantize_elementwise(v.reshape(b * h * t, c), 8, 64)
        kernel = ElementwiseAttentionKernel(
            AttentionShape(b, h, t, c), bits=8, q=q, k_quant=kq,
            v_quant=vq)
        out = kernel.execute()
        ref = attention_decode(q, kq.dequantize().reshape(b, h, t, c),
                               vq.dequantize().reshape(b, h, t, c))
        assert np.allclose(out, ref)
