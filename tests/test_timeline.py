"""Timeline telemetry, SLO burn-rate monitor and breakdown tests.

The load-bearing contract is bit-identity: a run with windowed
sampling enabled must report exactly the metrics of a run without it
(the golden tests pin the same thing end-to-end through the analytic
stack; here the stub cost model makes the comparison exact and fast).
Hypothesis drives the window-accounting properties — conservation of
flows and contiguity of boundaries — directly against the collector.
"""

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.breakdown import breakdown_summary, request_breakdowns
from repro.obs.slo import BurnRateRule, SLOMonitor, default_rules
from repro.obs.timeline import (
    Timeline,
    TimelineCollector,
    TimelineConfig,
    TimelineWindow,
)
from repro.serve.api import FleetConfig, SchedulerConfig, SimConfig
from repro.serve.requests import (
    LengthSampler,
    Request,
    flash_crowd_trace,
    poisson_trace,
)
from repro.serve.scheduler import KVBudget

REPO = Path(__file__).resolve().parent.parent


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _run_serving(trace, timeline=None, max_tokens=100_000.0,
                 trace_on=False, step_us=1000.0, **sched_kw):
    budget = KVBudget(capacity_bytes=max_tokens, bytes_per_token=1.0)
    cfg = SimConfig(scheduler=SchedulerConfig(token_budget=512, max_seqs=16,
                                              **sched_kw),
                    name="tl-test", trace=trace_on, timeline=timeline)
    return cfg.build(budget, ConstantCostModel(step_us)).run(trace)


def _run_fleet(trace, timeline=None, n_replicas=2, max_tokens=100_000.0):
    budget = KVBudget(capacity_bytes=max_tokens, bytes_per_token=1.0)
    cfg = FleetConfig(scheduler=SchedulerConfig(token_budget=512,
                                                max_seqs=16),
                      policy="round-robin", name="tl-fleet",
                      timeline=timeline)
    return cfg.build(n_replicas, budget, ConstantCostModel()).run(trace)


class TestConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            TimelineConfig(window_s=0.0)
        with pytest.raises(ValueError):
            TimelineConfig(slo_ttft_s=-1.0)
        with pytest.raises(ValueError):
            TimelineConfig(slo_target=1.0)

    def test_tracks_slo(self):
        assert not TimelineConfig().tracks_slo
        assert TimelineConfig(slo_ttft_s=0.5).tracks_slo
        assert TimelineConfig(slo_tpot_s=0.05).tracks_slo


class TestBitIdentity:
    """Sampling on vs off: end-of-run metrics must be equal, key for key."""

    def test_serving_metrics_identical_with_timeline(self):
        trace = poisson_trace(40.0, 60, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=3)
        plain = _run_serving(trace)
        sampled = _run_serving(
            trace, timeline=TimelineConfig(window_s=0.05, slo_ttft_s=0.2))
        assert sampled.metrics() == plain.metrics()
        assert sampled.timeline is not None and plain.timeline is None

    def test_serving_parity_under_kv_pressure(self):
        # Rejections and preemptions on the paged path must not move.
        trace = poisson_trace(60.0, 80, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=5)
        kw = dict(max_tokens=600.0, admission="paged", block_tokens=8)
        plain = _run_serving(trace, **kw)
        sampled = _run_serving(trace,
                               timeline=TimelineConfig(window_s=0.1), **kw)
        assert sampled.metrics() == plain.metrics()

    def test_fleet_metrics_identical_with_timeline(self):
        trace = poisson_trace(50.0, 60, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=4)
        plain = _run_fleet(trace)
        sampled = _run_fleet(
            trace, timeline=TimelineConfig(window_s=0.05, slo_ttft_s=0.2))
        assert sampled.metrics() == plain.metrics()
        assert sorted(sampled.timeline.replicas) == [0, 1]

    def test_window_choice_never_moves_metrics(self):
        trace = poisson_trace(40.0, 40, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=6)
        baseline = _run_serving(trace).metrics()
        for window_s in (0.01, 0.37, 5.0, 1e6):
            got = _run_serving(
                trace, timeline=TimelineConfig(window_s=window_s)).metrics()
            assert got == baseline, f"window_s={window_s} moved metrics"


class TestWindowAccounting:
    def _timeline(self, trace, window_s=0.1):
        report = _run_serving(
            trace, timeline=TimelineConfig(window_s=window_s))
        return report, report.timeline

    def test_flows_conserve_requests(self):
        trace = poisson_trace(40.0, 50, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=7)
        report, timeline = self._timeline(trace)
        wins = timeline.windows(0)
        assert sum(w.arrivals + w.rejections for w in wins) == len(trace)
        assert sum(w.completions for w in wins) == len(report.records)
        assert sum(len(w.ttft_ms) for w in wins) == len(report.records)

    def test_windows_are_contiguous_and_ordered(self):
        trace = poisson_trace(40.0, 50, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=7)
        _, timeline = self._timeline(trace, window_s=0.13)
        wins = timeline.windows(0)
        assert wins[0].t_start_s == 0.0
        for prev, cur in zip(wins, wins[1:]):
            assert prev.t_end_s == cur.t_start_s
            assert cur.t_end_s > cur.t_start_s

    def test_merged_sums_flows_across_replicas(self):
        trace = poisson_trace(50.0, 60, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=8)
        report = _run_fleet(trace, timeline=TimelineConfig(window_s=0.1))
        merged = report.timeline.merged()
        per_replica = sum(
            w.completions for rid in report.timeline.replica_ids
            for w in report.timeline.windows(rid))
        assert sum(w.completions for w in merged) == per_replica

    def test_series_accessor_rejects_unknown(self):
        trace = poisson_trace(40.0, 10, prompt=LengthSampler(mean=32),
                              output=LengthSampler(mean=8), seed=9)
        _, timeline = self._timeline(trace)
        assert timeline.series("arrivals")  # known name works
        with pytest.raises(KeyError):
            timeline.series("nope")

    def test_to_json_round_trip_shape(self):
        trace = poisson_trace(40.0, 20, prompt=LengthSampler(mean=32),
                              output=LengthSampler(mean=8), seed=10)
        _, timeline = self._timeline(trace)
        doc = json.loads(json.dumps(timeline.to_json()))
        assert doc["window_s"] == timeline.window_s
        assert len(doc["replicas"]["0"]) == timeline.n_windows


class _StubSched:
    waiting = ()
    preempted = ()
    running = ()
    kv_occupancy = 0.0
    n_preemptions = 0
    prefix_caching = False


class _StubSeq:
    """Minimal SequenceState stand-in for on_complete."""

    def __init__(self, arrival_s, first_token_s, finished_s, output_tokens):
        self.request = Request(req_id=0, arrival_s=arrival_s,
                               prompt_tokens=8,
                               output_tokens=output_tokens)
        self.first_token_s = first_token_s
        self.finished_s = finished_s


class TestCollectorProperties:
    """Hypothesis-driven boundary properties, straight on the collector."""

    @given(window_s=st.floats(min_value=0.01, max_value=3.0),
           times=st.lists(st.floats(min_value=0.0, max_value=10.0),
                          min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_every_arrival_lands_in_its_window(self, window_s, times):
        collector = TimelineCollector(TimelineConfig(window_s=window_s))
        sched = _StubSched()
        for t in sorted(times):
            while t >= collector.next_sample_s:
                collector.sample(collector.next_sample_s, (sched,))
            collector.on_arrival(0)
        timeline = collector.finalize(max(times), (sched,))
        wins = timeline.windows(0)
        assert sum(w.arrivals for w in wins) == len(times)
        # Each window's arrivals are exactly the times in [start, end)
        # (final window inclusive at the makespan).
        for i, w in enumerate(wins):
            expect = sum(
                1 for t in times
                if w.t_start_s <= t < w.t_end_s
                or (i == len(wins) - 1 and t == w.t_end_s))
            assert w.arrivals == expect

    @given(window_s=st.floats(min_value=0.05, max_value=2.0),
           finishes=st.lists(st.floats(min_value=0.01, max_value=8.0),
                             min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_banked_completions_assigned_to_finish_window(self, window_s,
                                                          finishes):
        collector = TimelineCollector(TimelineConfig(window_s=window_s))
        sched = _StubSched()
        # Bank everything up front (an iteration can finish work past
        # the open boundary); the collector must still assign each
        # completion to the window containing its finish time.
        collector.on_complete(
            0, [_StubSeq(0.0, f / 2, f, output_tokens=2) for f in finishes],
            max(finishes))
        end = max(finishes)
        while collector.next_sample_s <= end:
            collector.sample(collector.next_sample_s, (sched,))
        timeline = collector.finalize(end, (sched,))
        wins = timeline.windows(0)
        assert sum(w.completions for w in wins) == len(finishes)
        for i, w in enumerate(wins):
            expect = sum(
                1 for f in finishes
                if w.t_start_s <= f < w.t_end_s
                or (i == len(wins) - 1 and f >= w.t_end_s))
            assert w.completions == expect

    def test_contiguity_includes_trailing_partial_window(self):
        collector = TimelineCollector(TimelineConfig(window_s=1.0))
        sched = _StubSched()
        collector.sample(1.0, (sched,))
        collector.on_arrival(0)
        timeline = collector.finalize(1.4, (sched,))
        wins = timeline.windows(0)
        assert [w.t_end_s for w in wins] == [1.0, 1.4]
        assert wins[-1].arrivals == 1


def _slo_timeline(violating, total=10, window_s=1.0, n_windows=40):
    """Synthetic one-replica timeline: ``violating`` maps window index
    -> violations (out of ``total`` completions per window)."""
    wins = []
    for i in range(n_windows):
        bad = violating.get(i, 0)
        wins.append(TimelineWindow(
            t_start_s=float(i), t_end_s=float(i + 1),
            completions=total, slo_violations=bad,
            ttft_ms=tuple([500.0] * bad + [50.0] * (total - bad))))
    cfg = TimelineConfig(window_s=window_s, slo_ttft_s=0.1)
    return Timeline(name="synthetic", window_s=window_s,
                    replicas={0: wins}, config=cfg)


class TestSLOMonitor:
    def test_fires_during_burst_and_clears_after(self):
        # Windows 10..15 violate 100%; everything else is clean.
        timeline = _slo_timeline({i: 10 for i in range(10, 16)})
        report = SLOMonitor(target=0.99).evaluate(timeline)
        assert report.fired
        fast = report.alerts_for("fast")
        assert fast, "fast-burn rule should fire on a 100% burst"
        alert = fast[0]
        assert 10.0 <= alert.fired_s <= 16.0
        assert alert.cleared_s is not None and alert.cleared_s > 16.0
        assert alert.peak_burn_rate > 10.0

    def test_quiet_timeline_never_fires(self):
        report = SLOMonitor(target=0.99).evaluate(_slo_timeline({}))
        assert not report.fired
        assert report.attainment == 1.0
        assert report.alerts == []

    def test_budget_accounting(self):
        # 60 violations out of 400 completions against a 1% budget.
        timeline = _slo_timeline({i: 10 for i in range(10, 16)})
        report = SLOMonitor(target=0.99).evaluate(timeline)
        assert report.violation_fraction == pytest.approx(60 / 400)
        assert report.budget_consumed == pytest.approx((60 / 400) / 0.01)

    def test_rejudge_with_tighter_limit(self):
        # Re-judging from raw samples: with ttft_s=0.04 every
        # completion (50 ms clean ones included) violates.
        timeline = _slo_timeline({})
        report = SLOMonitor(target=0.99, ttft_s=0.04).evaluate(timeline)
        assert report.violation_fraction == 1.0

    def test_requires_slo_tracking_or_rejudge(self):
        timeline = Timeline(name="x", window_s=1.0,
                            replicas={0: []}, config=TimelineConfig())
        with pytest.raises(ValueError):
            SLOMonitor().evaluate(timeline)

    def test_default_rules_scale_with_window(self):
        rules = default_rules(1.0)
        assert {r.name for r in rules} == {"fast", "slow"}
        fast = next(r for r in rules if r.name == "fast")
        assert fast.factor == pytest.approx(10.0)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(name="bad", long_s=1.0, short_s=2.0, factor=2.0)


class TestEndToEndSLO:
    def test_flash_crowd_fires_and_clears(self):
        # Mirrors examples/slo_timeline.py at stub-cost scale: a
        # saturating burst in the middle of an otherwise easy trace.
        trace = flash_crowd_trace(
            10.0, 30.0, crowd_factor=20.0, crowd_start_s=10.0,
            crowd_duration_s=5.0, prompt=LengthSampler(mean=64),
            output=LengthSampler(mean=16), seed=2)
        report = _run_serving(
            trace, timeline=TimelineConfig(window_s=0.5, slo_ttft_s=0.05),
            max_tokens=2_000.0, step_us=20_000.0)
        slo = report.slo
        assert slo is not None and slo.fired
        alert = slo.alerts_for("fast")[0]
        assert alert.fired_s >= 10.0
        assert alert.cleared_s is None or alert.cleared_s > 15.0


class TestBreakdown:
    def _doc(self):
        from repro.obs import to_perfetto
        trace = poisson_trace(60.0, 50, prompt=LengthSampler(mean=64),
                              output=LengthSampler(mean=16), seed=11)
        report = _run_serving(trace, trace_on=True, max_tokens=800.0,
                              admission="paged", block_tokens=8)
        return to_perfetto(report.tracer, name="bd-test"), report

    def test_segments_sum_to_latency(self):
        doc, _ = self._doc()
        rows = request_breakdowns(doc)
        assert rows
        for row in rows:
            total = (row["queued"] + row["prefill"] + row["stall"]
                     + row["decode"])
            assert total == pytest.approx(row["latency_s"], abs=1e-9)

    def test_summary_shares_sum_to_one(self):
        doc, _ = self._doc()
        summary = breakdown_summary(request_breakdowns(doc))
        assert sum(summary["shares"].values()) == pytest.approx(1.0)
        assert summary["tail_dominant_phase"] in (
            "queued", "prefill", "stall", "decode")

    def test_covers_every_completed_request(self):
        doc, report = self._doc()
        assert len(request_breakdowns(doc)) == len(report.records)


def _run_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", *args], capture_output=True, text=True,
        cwd=cwd, env={"PYTHONPATH": str(REPO / "src"),
                      "PATH": "/usr/bin:/bin"})


class TestCLI:
    @pytest.fixture(scope="class")
    def timeline_trace(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("tl") / "trace.json"
        proc = _run_cli("repro.bench.serving",
                        "--modes", "fp16", "--requests", "16",
                        "--timeline-out", str(out),
                        "--slo-ttft-ms", "200")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        return out

    def test_timeline_out_writes_counter_tracks(self, timeline_trace):
        doc = json.loads(timeline_trace.read_text())
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters, "timeline must export Perfetto counter tracks"
        names = {e["name"] for e in counters}
        assert "timeline" in names and "kv_occupancy" in names

    def test_report_dashboard_renders_sparklines(self, timeline_trace):
        proc = _run_cli("repro.obs.report", str(timeline_trace),
                        "--dashboard")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "# Dashboard" in proc.stdout
        assert any(c in proc.stdout for c in "▁▂▃▄▅▆▇█")

    def test_report_html_export(self, timeline_trace, tmp_path):
        out = tmp_path / "dash.html"
        proc = _run_cli("repro.obs.report", str(timeline_trace),
                        "--dashboard", "--html", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        body = out.read_text()
        assert body.startswith("<!DOCTYPE html>") and "<table>" in body

    def test_orchestrator_timeline_dir(self, tmp_path):
        out = tmp_path / "traj.json"
        tl_dir = tmp_path / "timelines"
        proc = _run_cli("repro.bench.orchestrator", "--preset", "mini",
                        "--out", str(out), "--timeline-dir", str(tl_dir))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        files = sorted(tl_dir.glob("*.timeline.json"))
        assert len(files) == 4  # the mini preset's 2x2 grid
        doc = json.loads(files[0].read_text())
        assert set(doc) >= {"trial_id", "timeline"}


class TestHistogramQuantiles:
    """The flat-dict p50/p95/p99 export (log-bucket interpolation)."""

    def _hist(self, values, **kw):
        from repro.obs.metrics import Histogram
        h = Histogram("h", **kw)
        for v in values:
            h.observe(v)
        return h

    def test_flat_exports_quantile_keys(self):
        h = self._hist([1.0, 2.0, 3.0])
        assert set(h.flat()) == {"h_count", "h_sum",
                                 "h_p50", "h_p95", "h_p99"}

    def test_empty_histogram_is_zero(self):
        assert self._hist([]).quantile(0.5) == 0.0

    def test_estimate_within_bucket_resolution(self):
        # With factor f, an estimate can be off by at most f relative.
        import random
        rng = random.Random(0)
        values = sorted(rng.uniform(0.01, 50.0) for _ in range(2000))
        h = self._hist(values, start=0.001, factor=2.0, n_buckets=32)
        for q in (0.5, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            est = h.quantile(q)
            assert exact / 2.0 <= est <= exact * 2.0

    def test_overflow_clamps_to_last_boundary(self):
        h = self._hist([100.0], start=1.0, factor=2.0, n_buckets=3)
        assert h.quantile(0.5) == h.boundaries[-1]

    def test_first_bucket_interpolates_from_zero(self):
        h = self._hist([0.5], start=1.0, factor=2.0, n_buckets=4)
        assert 0.0 < h.quantile(0.5) <= 1.0

    def test_monotone_in_q(self):
        import random
        rng = random.Random(1)
        h = self._hist([rng.lognormvariate(2, 1) for _ in range(500)])
        qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0]
        ests = [h.quantile(q) for q in qs]
        assert ests == sorted(ests)

    def test_rejects_out_of_range(self):
        h = self._hist([1.0])
        with pytest.raises(ValueError):
            h.quantile(1.5)

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6),
                    min_size=1, max_size=200),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_estimate_brackets_exact_quantile(self, values, q):
        # The estimate must land inside the bucket that holds the
        # exact quantile value (overflow clamps to the last boundary).
        h = self._hist(values)
        est = h.quantile(q)
        rank = q * len(values)
        idx = max(math.ceil(rank) - 1, 0)
        exact = sorted(values)[idx]
        bucket = h.bucket_index(exact)
        if bucket == len(h.boundaries):
            assert est == h.boundaries[-1]
        else:
            lower = h.boundaries[bucket - 1] if bucket else 0.0
            assert lower <= est <= h.boundaries[bucket]

    def test_serving_metrics_gain_percentile_keys(self):
        trace = poisson_trace(40.0, 20, prompt=LengthSampler(mean=32),
                              output=LengthSampler(mean=8), seed=12)
        metrics = _run_serving(trace).metrics()
        for key in ("ttft_ms_p50", "ttft_ms_p95", "ttft_ms_p99",
                    "tpot_ms_p50", "latency_s_p99"):
            assert key in metrics
            assert math.isfinite(metrics[key])
