"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import optimal_split_factor
from repro.core.fusion import exchange_to_compute_layout, n_shuffles
from repro.gpu.occupancy import occupancy
from repro.gpu.shuffle import shfl_xor
from repro.gpu.spec import RTX4090
from repro.vq.config import VQConfig
from repro.vq.packing import pack_indices, unpack_indices
from repro.vq.quantizer import VectorQuantizer


class TestPackingProperties:
    @given(
        bits=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, bits, data):
        n = data.draw(st.integers(min_value=0, max_value=200))
        values = data.draw(st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=n, max_size=n))
        indices = np.array(values, dtype=np.int64)
        packed = pack_indices(indices, bits)
        assert np.array_equal(unpack_indices(packed, bits, n), indices)

    @given(bits=st.integers(min_value=1, max_value=16),
           n=st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_packed_size_is_minimal(self, bits, n):
        indices = np.zeros(n, dtype=np.int64)
        packed = pack_indices(indices, bits)
        assert packed.size == (n * bits + 7) // 8


class TestShuffleProperties:
    @given(offset=st.integers(min_value=0, max_value=31),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_shfl_xor_is_involution(self, offset, seed):
        values = np.random.default_rng(seed).standard_normal(32)
        twice = shfl_xor(shfl_xor(values, offset), offset)
        assert np.array_equal(twice, values)

    @given(offset=st.integers(min_value=0, max_value=31))
    @settings(max_examples=32, deadline=None)
    def test_shfl_xor_is_permutation(self, offset):
        values = np.arange(32)
        out = shfl_xor(values, offset)
        assert sorted(out.tolist()) == list(range(32))


class TestExchangeProperties:
    @given(log_ratio=st.integers(min_value=0, max_value=3),
           req=st.sampled_from([1, 2, 4]),
           seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_exchange_is_value_preserving_permutation(self, log_ratio,
                                                      req, seed):
        vector = (1 << log_ratio) * req
        warp = np.random.default_rng(seed).standard_normal((32, vector))
        out = exchange_to_compute_layout(warp, req)
        assert np.allclose(np.sort(warp.ravel()), np.sort(out.ravel()))

    @given(log_v=st.integers(min_value=0, max_value=4),
           log_req=st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_n_shuffles_consistent_with_ratio(self, log_v, log_req):
        v, req = 1 << log_v, 1 << log_req
        shuffles = n_shuffles(v, req)
        if v <= req:
            assert shuffles == 0
        else:
            assert shuffles == v // req - 1


class TestOccupancyProperties:
    @given(threads=st.sampled_from([32, 64, 128, 256, 512]),
           regs=st.integers(min_value=1, max_value=255),
           smem=st.integers(min_value=0, max_value=101376))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded(self, threads, regs, smem):
        occ = occupancy(RTX4090, threads, regs, smem)
        assert 0 <= occ.blocks_per_sm <= RTX4090.max_blocks_per_sm
        assert 0.0 <= occ.occupancy <= 1.0

    @given(threads=st.sampled_from([64, 128, 256]),
           regs=st.integers(min_value=16, max_value=128),
           smem=st.integers(min_value=0, max_value=50000),
           extra=st.integers(min_value=0, max_value=50000))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_monotone_in_smem(self, threads, regs, smem, extra):
        base = occupancy(RTX4090, threads, regs, smem)
        more = occupancy(RTX4090, threads, regs, smem + extra)
        assert more.blocks_per_sm <= base.blocks_per_sm


class TestSplitFactorProperties:
    @given(codebook=st.floats(min_value=1.0, max_value=1e12),
           output=st.floats(min_value=1.0, max_value=1e12),
           max_split=st.integers(min_value=1, max_value=256))
    @settings(max_examples=80, deadline=None)
    def test_split_in_range_and_near_optimal(self, codebook, output,
                                             max_split):
        s = optimal_split_factor(codebook, output, max_split)
        assert 1 <= s <= max_split

        def objective(x):
            return codebook / x + x * output

        # The chosen integer split is no worse than its neighbours.
        if s > 1:
            assert objective(s) <= objective(s - 1) * (1 + 1e-9) \
                or s == max_split
        if s < max_split:
            assert objective(s) <= objective(s + 1) * (1 + 1e-9) or s == 1


class TestQuantizerProperties:
    @given(
        vector=st.sampled_from([2, 4]),
        bits=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=12, deadline=None)
    def test_roundtrip_error_bounded_by_data_energy(self, vector, bits,
                                                    seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((48, 16))
        cfg = VQConfig("p", vector_size=vector, index_bits=bits,
                       residuals=1)
        qt = VectorQuantizer(cfg, seed=seed, kmeans_iters=4).quantize(data)
        # Quantizing to the nearest centroid can never exceed the
        # data's own energy (centroid 0 trivially achieves variance).
        assert qt.reconstruction_error(data) <= np.mean(data * data) * 1.01

    @given(bits=st.integers(min_value=2, max_value=5),
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_codes_always_in_range(self, bits, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((32, 8))
        cfg = VQConfig("p", vector_size=4, index_bits=bits, residuals=2)
        qt = VectorQuantizer(cfg, seed=seed, kmeans_iters=3).quantize(data)
        assert qt.codes.min() >= 0
        assert qt.codes.max() < (1 << bits)

    @given(seed=st.integers(min_value=0, max_value=15))
    @settings(max_examples=8, deadline=None)
    def test_remap_invariant_under_random_permutation(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((32, 16))
        cfg = VQConfig("p", vector_size=4, index_bits=4, residuals=1)
        qt = VectorQuantizer(cfg, seed=seed, kmeans_iters=3).quantize(data)
        perm = rng.permutation(16)
        assert np.allclose(qt.remap(perm).dequantize(), qt.dequantize())
